// Package sim is a small deterministic discrete-event simulation engine:
// an event heap ordered by (time, sequence), a clock, and run control.
// It is the substrate under the trace-driven executors in internal/core,
// playing the role of the paper's Python simulation framework
// (Section V-A).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sync"

	"heteropim/internal/hw"
)

// Event is a scheduled callback.
type event struct {
	at  hw.Seconds
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is the simulation core. The zero value is NOT usable; call New.
type Engine struct {
	now    hw.Seconds
	seq    uint64
	events eventHeap
	// processed counts executed events (for runaway detection).
	processed uint64
	// MaxEvents guards against schedule loops; 0 means the default.
	MaxEvents uint64
	// obs receives instrumentation events when attached (observe.go);
	// nil on the uninstrumented fast path.
	obs Collector
}

// DefaultMaxEvents bounds a single Run; generous for every workload here.
const DefaultMaxEvents = 200_000_000

// New creates an engine at time zero.
func New() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() hw.Seconds { return e.now }

// Processed returns how many events have executed.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn at an absolute time, which must not be in the past.
func (e *Engine) At(t hw.Seconds, fn func()) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("sim: scheduling at non-finite time %v", t)
	}
	if t < e.now {
		return fmt.Errorf("sim: scheduling at %.9g, before now %.9g", t, e.now)
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
	return nil
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay hw.Seconds, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("sim: negative delay %.9g", delay)
	}
	return e.At(e.now+delay, fn)
}

// Run executes events until the queue drains. It returns an error if the
// event budget is exhausted (a scheduling loop).
func (e *Engine) Run() error {
	max := e.MaxEvents
	if max == 0 {
		max = DefaultMaxEvents
	}
	for len(e.events) > 0 {
		if e.processed >= max {
			return fmt.Errorf("sim: event budget (%d) exhausted at t=%.9g — scheduling loop?", max, e.now)
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.processed++
		ev.fn()
	}
	return nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Reset returns the engine to its initial state (time zero, no events,
// default budget) while keeping the event heap's backing array, so a
// recycled engine runs its next simulation without re-growing the heap.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.MaxEvents = 0
	e.obs = nil
	for i := range e.events {
		e.events[i].fn = nil // drop closure references for the GC
	}
	e.events = e.events[:0]
}

// enginePool recycles engines (and their grown heap arrays) across
// simulation runs. One steady-state run schedules tens of thousands of
// events; reusing the backing array removes that re-growth from every
// cell of a parallel sweep.
var enginePool = sync.Pool{New: func() any { return New() }}

// Acquire returns a reset engine from the pool.
func Acquire() *Engine {
	return enginePool.Get().(*Engine)
}

// Release resets the engine and returns it to the pool. The caller must
// not use the engine afterwards.
func Release(e *Engine) {
	if e == nil {
		return
	}
	e.Reset()
	enginePool.Put(e)
}
