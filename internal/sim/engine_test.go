package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		if err := e.At(at, func() { got = append(got, at) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %g, want 5", e.Now())
	}
	if e.Processed() != 5 {
		t.Fatalf("processed = %d", e.Processed())
	}
}

func TestTiesBreakBySequence(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.At(1.0, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := New()
	var trail []float64
	if err := e.After(1, func() {
		trail = append(trail, e.Now())
		if err := e.After(2, func() { trail = append(trail, e.Now()) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trail) != 2 || trail[0] != 1 || trail[1] != 3 {
		t.Fatalf("trail = %v, want [1 3]", trail)
	}
}

func TestRejectsPastAndBogusTimes(t *testing.T) {
	e := New()
	if err := e.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	_ = e.Run()
	if err := e.At(1, func() {}); err == nil {
		t.Error("scheduling in the past must error")
	}
	if err := e.After(-1, func() {}); err == nil {
		t.Error("negative delay must error")
	}
	var nan float64
	nan = nan / nan * 0 // keep vet quiet; produce NaN below
	_ = nan
	if err := e.At(nanValue(), func() {}); err == nil {
		t.Error("NaN time must error")
	}
}

func nanValue() float64 {
	z := 0.0
	return z / z
}

func TestEventBudgetStopsLoops(t *testing.T) {
	e := New()
	e.MaxEvents = 100
	var loop func()
	loop = func() {
		_ = e.After(1, loop)
	}
	_ = e.After(0, loop)
	if err := e.Run(); err == nil {
		t.Fatal("runaway schedule must be detected")
	}
}

func TestPending(t *testing.T) {
	e := New()
	_ = e.At(1, func() {})
	_ = e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	_ = e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d", e.Pending())
	}
}

func TestClockMonotoneQuick(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		prev := -1.0
		ok := true
		for _, d := range delays {
			at := float64(d) / 100
			_ = e.At(at, func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResetReusesHeapStorage(t *testing.T) {
	e := New()
	for i := 0; i < 1000; i++ {
		_ = e.At(float64(i), func() {})
	}
	grown := cap(e.events)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if e.Now() != 0 || e.seq != 0 || e.Processed() != 0 || e.Pending() != 0 {
		t.Fatalf("reset engine not pristine: now=%g seq=%d processed=%d pending=%d",
			e.Now(), e.seq, e.Processed(), e.Pending())
	}
	if cap(e.events) != grown {
		t.Fatalf("reset dropped the heap backing array: cap %d, want %d", cap(e.events), grown)
	}
	// A recycled engine must behave exactly like a fresh one.
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		_ = e.At(1.0, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("recycled engine reordered same-time events: %v", got)
		}
	}
}

func TestAcquireRelease(t *testing.T) {
	e := Acquire()
	_ = e.After(1, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	Release(e)
	Release(nil) // must be a no-op
	e2 := Acquire()
	if e2.Now() != 0 || e2.Pending() != 0 {
		t.Fatalf("pooled engine not reset: now=%g pending=%d", e2.Now(), e2.Pending())
	}
	Release(e2)
}

func BenchmarkEngineThroughput(b *testing.B) {
	// Raw event throughput of the DES core.
	e := New()
	e.MaxEvents = uint64(b.N) + 10
	var fire func()
	count := 0
	fire = func() {
		count++
		if count < b.N {
			_ = e.After(1e-9, fire)
		}
	}
	_ = e.After(0, fire)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
