package sim

import (
	"fmt"
	"math"

	"heteropim/internal/hw"
)

// Engine checkpoint/restore: a Checkpoint freezes the engine's complete
// scheduling state — clock, sequence counter, processed-event count and
// the event heap's backing slab — so a run can be forked at an event
// boundary and replayed into one or more fresh engines. The delta
// simulation layer in internal/core uses this to share the
// configuration-independent prefix of a design-space candidate's event
// timeline across the whole candidate group.
//
// Only typed events snapshot: a KindFunc payload is an opaque closure
// over live executor state, so copying it into another run would alias
// that state. Checkpoint refuses them. Typed payloads are plain values
// plus one pointer operand, which Restore lets the caller remap into
// the fork's own state (see the remap parameter).
//
// Bit-identity contract: restoring a checkpoint into a fresh engine and
// draining it executes exactly the events, in exactly the order, at
// exactly the times the source engine would have executed had it kept
// running — the heap slab is copied verbatim (heap layout preserved)
// and the sequence counter continues from the snapshot, so later
// schedules tie-break identically. checkpoint_test.go pins this.

// Checkpoint is a frozen engine state. It is immutable once taken and
// safe to share: every Restore copies the slab into the target engine,
// so concurrent forks of one checkpoint never alias event storage.
type Checkpoint struct {
	now       hw.Seconds
	seq       uint64
	processed uint64
	maxEvents uint64
	events    []event
}

// Now returns the simulated time the checkpoint was taken at.
func (c Checkpoint) Now() hw.Seconds { return c.now }

// Processed returns how many events had executed at the checkpoint.
func (c Checkpoint) Processed() uint64 { return c.processed }

// Pending returns how many events were queued at the checkpoint.
func (c Checkpoint) Pending() int { return len(c.events) }

// Remap returns a copy of the checkpoint with fn applied to every
// pending payload. The capture side uses this to detach payload Ptr
// operands from the source run's state (e.g. rewrite task pointers to
// slab indices) before that state is torn down, so the checkpoint can
// outlive the run it was taken from.
func (c Checkpoint) Remap(fn func(Ev) Ev) Checkpoint {
	out := c
	out.events = make([]event, len(c.events))
	copy(out.events, c.events)
	for i := range out.events {
		out.events[i].ev = fn(out.events[i].ev)
	}
	return out
}

// Checkpoint snapshots the engine at the current event boundary. It
// must be called between events (never from inside a Handler whose
// event is still mutating state — the snapshot cannot see half-applied
// mutations, only the engine's own queue). It fails if any pending
// event is a KindFunc closure.
func (e *Engine) Checkpoint() (Checkpoint, error) {
	for i := range e.events {
		if e.events[i].ev.Kind == KindFunc {
			return Checkpoint{}, fmt.Errorf(
				"sim: cannot checkpoint: pending closure (KindFunc) event at t=%.9g; only typed events snapshot",
				e.events[i].at)
		}
	}
	cp := Checkpoint{
		now:       e.now,
		seq:       e.seq,
		processed: e.processed,
		maxEvents: e.MaxEvents,
		events:    make([]event, len(e.events)),
	}
	copy(cp.events, e.events)
	return cp, nil
}

// Restore loads a checkpoint into a fresh (new or Reset) engine. When
// remap is non-nil it is applied to every restored payload — the fork
// hook that rewrites Ptr operands from the source run's state into the
// fork's own (e.g. task-slab index translation). Restore never mutates
// the checkpoint, so one checkpoint may be restored concurrently into
// any number of engines.
func (e *Engine) Restore(cp Checkpoint, remap func(Ev) Ev) error {
	if e.now != 0 || e.seq != 0 || e.processed != 0 || len(e.events) != 0 {
		return fmt.Errorf("sim: Restore needs a fresh or Reset engine (now=%.9g, %d pending)",
			e.now, len(e.events))
	}
	e.now = cp.now
	e.seq = cp.seq
	e.processed = cp.processed
	e.MaxEvents = cp.maxEvents
	e.events = append(e.events[:0], cp.events...)
	if remap != nil {
		for i := range e.events {
			e.events[i].ev = remap(e.events[i].ev)
		}
	}
	return nil
}

// RunUntil executes events until the queue drains or the engine's
// total processed count (including events executed before a Restore)
// reaches stopAfter — the next event is then left PENDING, so the
// engine sits at a clean event boundary ready for Checkpoint. The
// event-budget guard applies exactly as in Run.
func (e *Engine) RunUntil(stopAfter uint64) error { return e.drain(stopAfter) }

// Run executes events until the queue drains. It returns an error if the
// event budget is exhausted (a scheduling loop).
func (e *Engine) Run() error { return e.drain(math.MaxUint64) }
