package sim

import (
	"fmt"

	"heteropim/internal/hw"
)

// Typed event payloads. The engine's original API schedules a `func()`
// per event; in a steady-state run that closure is the last per-event
// heap allocation left (PR 3 removed the heap boxing, PR 5 removes the
// closures). A typed payload is a small value struct carried inside the
// event heap's own slab: scheduling one touches no allocator at all.
//
// The payload is deliberately generic — a kind tag plus a handful of
// scalar operands and one pointer slot — so internal/sim stays free of
// executor types. The executor defines its own EventKind values and
// implements Handler; the engine routes every non-closure event there.

// EventKind discriminates typed events. Kind zero is reserved for the
// legacy closure path (Ptr holds the func()).
type EventKind uint8

// KindFunc marks a legacy closure event: Ptr holds a func() invoked
// directly by the engine. At/After produce these; hot paths use AtEv.
const KindFunc EventKind = 0

// Ev is one typed event payload. Field meaning is owner-defined per
// Kind; the struct is sized so the common cases (a task pointer, a
// device index, a few work scalars, a recorded start time) fit without
// any side allocation. Storing a pointer-shaped value (e.g. *task) in
// Ptr does not allocate.
type Ev struct {
	Kind EventKind
	// A is a small operand (e.g. a device index).
	A uint8
	// Flag is a boolean operand (e.g. before/after residual).
	Flag bool
	// N is an integer operand (e.g. slots or granted units).
	N int32
	// F1..F3 are scalar operands (e.g. chunk flops/bytes, a sync cost).
	F1, F2, F3 float64
	// Start is a recorded timestamp operand (e.g. a span's start).
	Start hw.Seconds
	// Ptr is the pointer operand (a *task, or the func() of KindFunc).
	Ptr any
}

// Handler dispatches typed events. The engine calls it synchronously
// from Run, in heap order, with the clock already advanced to the
// event's time.
type Handler interface {
	HandleEvent(ev Ev)
}

// SetHandler attaches the typed-event dispatcher. Reset/Release detach
// it, so a pooled engine never leaks a handler into its next run.
func (e *Engine) SetHandler(h Handler) { e.handler = h }

// AtEv schedules a typed event at an absolute time. Like At it rejects
// non-finite or past times; unlike At it performs no allocation beyond
// (amortized) heap-slab growth.
func (e *Engine) AtEv(t hw.Seconds, ev Ev) error {
	if err := e.checkTime(t); err != nil {
		return err
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, ev: ev})
	return nil
}

// AfterEv schedules a typed event delay seconds from now.
func (e *Engine) AfterEv(delay hw.Seconds, ev Ev) error {
	if delay < 0 {
		return fmt.Errorf("sim: negative delay %.9g", delay)
	}
	return e.AtEv(e.now+delay, ev)
}
