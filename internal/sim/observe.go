package sim

import "heteropim/internal/hw"

// Task describes one interval of device work for observability: a span
// on a named track of the per-device timeline. Track is the device lane
// ("cpu", "prog", "fixed", "residual.prog", ...), Name the operation,
// Kind the lifecycle phase ("op", "section", "residual").
type Task struct {
	Track string
	Name  string
	Kind  string
	Step  int
	Start hw.Seconds
	End   hw.Seconds
}

// Collector receives instrumentation callbacks from a simulation run.
// The engine invokes it synchronously from the run's own goroutine; a
// collector shared between concurrent runs (e.g. the cells of a
// parallel sweep) must itself be safe for concurrent use —
// metrics.Collector is.
//
// Collectors observe, never steer: attaching one must not change any
// simulation outcome (the determinism tests assert bit-identical
// results with and without a collector).
type Collector interface {
	// TaskStart fires when a task begins occupying its track; only
	// Start is set.
	TaskStart(t Task)
	// TaskEnd fires at completion with both Start and End set.
	TaskEnd(t Task)
	// Sample records an instantaneous gauge value (queue depth, busy
	// units, pipeline occupancy) at simulated time `at`.
	Sample(name string, at hw.Seconds, v float64)
	// Count accumulates a named counter (scheduling decisions,
	// CPU fallbacks, processed events).
	Count(name string, delta float64)
}

// SetCollector attaches (or, with nil, detaches) the run's collector.
// Release/Reset detaches automatically, so a pooled engine never leaks
// a collector into its next run.
func (e *Engine) SetCollector(c Collector) { e.obs = c }

// Collector returns the attached collector (nil when uninstrumented).
func (e *Engine) Collector() Collector { return e.obs }

// Observing reports whether a collector is attached. Executors use it
// to skip building event payloads entirely on the uninstrumented path,
// keeping the overhead of the hooks to one nil check.
func (e *Engine) Observing() bool { return e.obs != nil }

// EmitTaskStart emits a task-start event at the current simulated time.
func (e *Engine) EmitTaskStart(t Task) {
	if e.obs == nil {
		return
	}
	t.Start = e.now
	e.obs.TaskStart(t)
}

// EmitTaskEnd emits a task-end event ending at the current simulated
// time; the caller supplies the span's recorded start.
func (e *Engine) EmitTaskEnd(t Task) {
	if e.obs == nil {
		return
	}
	t.End = e.now
	e.obs.TaskEnd(t)
}

// EmitSample emits a gauge sample stamped with the current time.
func (e *Engine) EmitSample(name string, v float64) {
	if e.obs == nil {
		return
	}
	e.obs.Sample(name, e.now, v)
}

// EmitCount accumulates a counter.
func (e *Engine) EmitCount(name string, delta float64) {
	if e.obs == nil {
		return
	}
	e.obs.Count(name, delta)
}
