package sim

import (
	"testing"

	"heteropim/internal/hw"
)

// recordingCollector captures every callback for assertions.
type recordingCollector struct {
	starts, ends []Task
	samples      []struct {
		name string
		at   hw.Seconds
		v    float64
	}
	counts map[string]float64
}

func newRecordingCollector() *recordingCollector {
	return &recordingCollector{counts: map[string]float64{}}
}

func (c *recordingCollector) TaskStart(t Task) { c.starts = append(c.starts, t) }
func (c *recordingCollector) TaskEnd(t Task)   { c.ends = append(c.ends, t) }
func (c *recordingCollector) Sample(name string, at hw.Seconds, v float64) {
	c.samples = append(c.samples, struct {
		name string
		at   hw.Seconds
		v    float64
	}{name, at, v})
}
func (c *recordingCollector) Count(name string, delta float64) { c.counts[name] += delta }

// TestEmitWithoutCollector checks the emit helpers are no-ops (and do
// not panic) on the uninstrumented path.
func TestEmitWithoutCollector(t *testing.T) {
	e := New()
	if e.Observing() {
		t.Fatal("fresh engine must not be observing")
	}
	e.EmitTaskStart(Task{Track: "cpu"})
	e.EmitTaskEnd(Task{Track: "cpu"})
	e.EmitSample("queue.cpu", 1)
	e.EmitCount("sched.path.cpu", 1)
}

// TestEmitTimestamps checks emitted events carry the engine's simulated
// clock: start stamped at emit time, end at completion time.
func TestEmitTimestamps(t *testing.T) {
	e := New()
	c := newRecordingCollector()
	e.SetCollector(c)
	if !e.Observing() {
		t.Fatal("Observing() false with a collector attached")
	}
	var startAt hw.Seconds
	if err := e.At(1.5, func() {
		e.EmitTaskStart(Task{Track: "cpu", Name: "MatMul", Step: 2})
		startAt = e.Now()
		e.EmitSample("queue.cpu", 3)
		if err := e.After(0.5, func() {
			e.EmitTaskEnd(Task{Track: "cpu", Name: "MatMul", Step: 2, Start: startAt})
			e.EmitCount("sched.path.cpu", 1)
		}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(c.starts) != 1 || c.starts[0].Start != 1.5 {
		t.Fatalf("starts = %+v, want one start at t=1.5", c.starts)
	}
	if len(c.ends) != 1 || c.ends[0].Start != 1.5 || c.ends[0].End != 2.0 {
		t.Fatalf("ends = %+v, want one span [1.5, 2.0]", c.ends)
	}
	if len(c.samples) != 1 || c.samples[0].at != 1.5 || c.samples[0].v != 3 {
		t.Fatalf("samples = %+v, want queue.cpu=3 at t=1.5", c.samples)
	}
	if c.counts["sched.path.cpu"] != 1 {
		t.Fatalf("counts = %v, want sched.path.cpu=1", c.counts)
	}
}

// TestResetDetachesCollector guards the engine pool: a recycled engine
// must never leak its previous run's collector.
func TestResetDetachesCollector(t *testing.T) {
	e := Acquire()
	e.SetCollector(newRecordingCollector())
	Release(e)
	e2 := Acquire()
	defer Release(e2)
	if e2.Observing() {
		t.Fatal("pooled engine still has a collector after Release")
	}
}
