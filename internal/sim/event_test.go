package sim

import (
	"testing"

	"heteropim/internal/hw"
)

// recHandler records dispatched payloads in order.
type recHandler struct {
	got []Ev
	eng *Engine
}

func (h *recHandler) HandleEvent(ev Ev) { h.got = append(h.got, ev) }

func TestTypedEventsDispatchInOrder(t *testing.T) {
	e := New()
	h := &recHandler{}
	e.SetHandler(h)
	if err := e.AtEv(2, Ev{Kind: 3, N: 30}); err != nil {
		t.Fatal(err)
	}
	if err := e.AtEv(1, Ev{Kind: 2, N: 10}); err != nil {
		t.Fatal(err)
	}
	if err := e.AtEv(1, Ev{Kind: 2, N: 20}); err != nil { // same time: insertion order
		t.Fatal(err)
	}
	var funcRan bool
	if err := e.After(1.5, func() { funcRan = true }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !funcRan {
		t.Fatal("interleaved closure event did not run")
	}
	want := []int32{10, 20, 30}
	if len(h.got) != len(want) {
		t.Fatalf("dispatched %d typed events, want %d", len(h.got), len(want))
	}
	for i, ev := range h.got {
		if ev.N != want[i] {
			t.Errorf("event %d: N=%d, want %d", i, ev.N, want[i])
		}
	}
}

func TestTypedEventWithoutHandlerErrors(t *testing.T) {
	e := New()
	if err := e.AtEv(1, Ev{Kind: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("typed event with no handler must error, not panic or vanish")
	}
}

func TestAtEvValidatesTime(t *testing.T) {
	e := New()
	if err := e.AtEv(-1, Ev{Kind: 1}); err == nil {
		t.Error("past time accepted")
	}
	if err := e.AfterEv(-0.5, Ev{Kind: 1}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestResetDetachesHandler(t *testing.T) {
	e := New()
	e.SetHandler(&recHandler{})
	e.Reset()
	if err := e.AtEv(1, Ev{Kind: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("Reset must detach the handler")
	}
}

// chainHandler reschedules n follow-up events, emulating a steady-state
// executor that schedules from within event dispatch.
type chainHandler struct {
	eng  *Engine
	left int
	task *int // pointer payload, checks Ptr round-trips without boxing
}

func (h *chainHandler) HandleEvent(ev Ev) {
	if ev.Ptr != h.task {
		panic("payload pointer lost")
	}
	if h.left == 0 {
		return
	}
	h.left--
	if err := h.eng.AfterEv(1e-3, Ev{Kind: 1, N: int32(h.left), F1: 0.5, Ptr: h.task}); err != nil {
		panic(err)
	}
}

// TestTypedEventSchedulingAllocsFree pins the tentpole property at the
// engine level: once the heap slab has grown, scheduling and
// dispatching typed events performs ZERO heap allocations — no closure,
// no boxing of the payload or its pointer operand.
func TestTypedEventSchedulingAllocsFree(t *testing.T) {
	e := New()
	tk := new(int)
	run := func() {
		h := e.handler.(*chainHandler)
		h.left = 500
		if err := e.AtEv(e.Now()+1e-3, Ev{Kind: 1, Ptr: tk}); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	e.SetHandler(&chainHandler{eng: e, task: tk})
	run() // grow the heap slab
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("typed event scheduling allocates %.2f objects per 500-event run, want 0", allocs)
	}
}

// The legacy closure path, by contrast, allocates at least the closure
// per event — the "before" side of the pimbench -eventsjson comparison.
func TestClosureEventsStillWork(t *testing.T) {
	e := New()
	var n int
	var schedule func()
	schedule = func() {
		n++
		if n < 100 {
			if err := e.After(1e-3, schedule); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.After(0, schedule); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("ran %d closure events, want 100", n)
	}
	if e.Now() != hw.Seconds(99e-3) && e.Now() <= 0 {
		t.Fatalf("clock did not advance: %v", e.Now())
	}
}
