package sim

import (
	"reflect"
	"sync"
	"testing"
)

// cpHandler records every dispatched typed event with its time.
type cpHandler struct {
	eng  *Engine
	log  []cpEntry
	feed int
}

type cpEntry struct {
	kind EventKind
	n    int32
	at   float64
}

func (h *cpHandler) HandleEvent(ev Ev) {
	h.log = append(h.log, cpEntry{kind: ev.Kind, n: ev.N, at: h.eng.Now()})
	// A little feedback scheduling so the suffix depends on engine state
	// (sequence tie-breaks, relative delays), not just the initial queue.
	if ev.Kind == 1 && h.feed < 5 {
		h.feed++
		if err := h.eng.AfterEv(0.5, Ev{Kind: 2, N: ev.N + 100}); err != nil {
			panic(err)
		}
		if err := h.eng.AfterEv(0.5, Ev{Kind: 2, N: ev.N + 200}); err != nil {
			panic(err)
		}
	}
}

// seedEngine schedules a deterministic batch of typed events, including
// same-time ties.
func seedEngine(t *testing.T, e *Engine, h *cpHandler) {
	t.Helper()
	e.SetHandler(h)
	h.eng = e
	for i := 0; i < 8; i++ {
		at := float64(i%3) + 0.25
		if err := e.AtEv(at, Ev{Kind: 1, N: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Ties at t=1.0 exercise sequence-order preservation.
	for i := 0; i < 4; i++ {
		if err := e.AtEv(1.0, Ev{Kind: 3, N: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckpointRestoreBitIdentical(t *testing.T) {
	// Reference: run uninterrupted.
	ref := New()
	refH := &cpHandler{}
	seedEngine(t, ref, refH)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	for stop := uint64(0); stop <= ref.Processed(); stop++ {
		src := New()
		srcH := &cpHandler{}
		seedEngine(t, src, srcH)
		if err := src.RunUntil(stop); err != nil {
			t.Fatal(err)
		}
		cp, err := src.Checkpoint()
		if err != nil {
			t.Fatalf("stop=%d: %v", stop, err)
		}
		if cp.Processed() != src.Processed() || cp.Now() != src.Now() || cp.Pending() != src.Pending() {
			t.Fatalf("stop=%d: checkpoint accessors disagree with engine", stop)
		}
		dst := New()
		dstH := &cpHandler{log: append([]cpEntry(nil), srcH.log...), feed: srcH.feed}
		dst.SetHandler(dstH)
		dstH.eng = dst
		if err := dst.Restore(cp, nil); err != nil {
			t.Fatal(err)
		}
		if err := dst.Run(); err != nil {
			t.Fatal(err)
		}
		if dst.Processed() != ref.Processed() || dst.Now() != ref.Now() {
			t.Fatalf("stop=%d: resumed run ended at (%d, %.9g), want (%d, %.9g)",
				stop, dst.Processed(), dst.Now(), ref.Processed(), ref.Now())
		}
		if !reflect.DeepEqual(dstH.log, refH.log) {
			t.Fatalf("stop=%d: resumed event log diverges from the uninterrupted run", stop)
		}
	}
}

func TestCheckpointRefusesClosures(t *testing.T) {
	e := New()
	if err := e.After(1, func() {}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Fatal("expected refusal: pending KindFunc event")
	}
}

func TestRestoreNeedsFreshEngine(t *testing.T) {
	src := New()
	h := &cpHandler{}
	seedEngine(t, src, h)
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	dirty := New()
	dirtyH := &cpHandler{}
	seedEngine(t, dirty, dirtyH)
	if err := dirty.Run(); err != nil {
		t.Fatal(err)
	}
	if err := dirty.Restore(cp, nil); err == nil {
		t.Fatal("expected refusal: engine not fresh")
	}
	fresh := New()
	if err := fresh.Restore(cp, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRemapAndConcurrentRestores(t *testing.T) {
	src := New()
	h := &cpHandler{}
	seedEngine(t, src, h)
	if err := src.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Remap returns a detached copy; the original stays untouched.
	marked := cp.Remap(func(ev Ev) Ev { ev.A = 7; return ev })
	if marked.Pending() != cp.Pending() {
		t.Fatal("Remap changed the pending count")
	}

	var wg sync.WaitGroup
	logs := make([][]cpEntry, 4)
	for i := range logs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := New()
			eh := &cpHandler{feed: h.feed}
			e.SetHandler(eh)
			eh.eng = e
			if err := e.Restore(marked, nil); err != nil {
				panic(err)
			}
			if err := e.Run(); err != nil {
				panic(err)
			}
			logs[i] = eh.log
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(logs); i++ {
		if !reflect.DeepEqual(logs[i], logs[0]) {
			t.Fatalf("concurrent restore %d diverged", i)
		}
	}
	if len(logs[0]) == 0 {
		t.Fatal("restored runs executed no events")
	}
}
