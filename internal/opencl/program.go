package opencl

import (
	"fmt"

	"heteropim/internal/nn"
	"heteropim/internal/pimvm"
)

// VMKernelConfig builds an executable Kernel whose programmable-PIM
// body is a real pimvm program operating on a buffer in the shared
// global memory — the concrete form of binaries #2 and #4 of Fig. 4.
type VMKernelConfig struct {
	// Name is the kernel name.
	Name string
	// Op fixes eligibility/decomposability via the nn profile tables.
	Op nn.OpType
	// Program is the programmable-PIM binary.
	Program *pimvm.Program
	// Buffer is the name of the shared-memory buffer the program
	// addresses (its Data backs the VM memory).
	Buffer string
	// Args initializes registers r0..r7 before execution; it runs at
	// launch time so arguments can depend on the execution context.
	Args func(ctx *ExecContext) ([8]float64, error)
	// Fixed maps CALLFIXED ids to fixed-function handlers; with the
	// recursive binary these model the Fig. 6 sub-kernels.
	Fixed map[int]pimvm.FixedHandler
}

// VMKernel assembles the Kernel. The kernel body instantiates a VM over
// the buffer's tensor storage and runs the program; recursive
// fixed-function calls are only honored when the kernel executes as the
// recursive binary (#4) — matching ExecContext.CallFixed's rule.
func VMKernel(cfg VMKernelConfig) (*Kernel, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("opencl: VM kernel %q has no program", cfg.Name)
	}
	if err := cfg.Program.Validate(); err != nil {
		return nil, err
	}
	body := func(ctx *ExecContext) error {
		buf, err := ctx.Memory.Get(cfg.Buffer)
		if err != nil {
			return err
		}
		if buf.Data == nil {
			return fmt.Errorf("opencl: VM kernel %q: buffer %q has no functional payload", cfg.Name, cfg.Buffer)
		}
		vm := pimvm.New(buf.Data.Data)
		if cfg.Args != nil {
			args, err := cfg.Args(ctx)
			if err != nil {
				return err
			}
			copy(vm.Regs[:8], args[:])
		}
		for id, h := range cfg.Fixed {
			h := h
			id := id
			vm.RegisterFixed(id, func(mem []float32, args [8]float64) (uint64, error) {
				// Route through the OpenCL-level recursive-call gate so
				// binary #1/#2 executions cannot sneak fixed calls in;
				// the handler itself IS the extracted section, so the
				// gate only validates and counts.
				if err := ctx.NoteFixedCall(); err != nil {
					return 0, err
				}
				return h(mem, args)
			})
		}
		return vm.Run(cfg.Program)
	}
	k := &Kernel{Name: cfg.Name, Op: cfg.Op, Body: body}
	// The extracted fixed sections, runnable directly on the
	// fixed-function device (binary #3): execute every registered
	// handler once over the buffer.
	if len(cfg.Fixed) > 0 {
		k.FixedBody = func(ctx *ExecContext) error {
			buf, err := ctx.Memory.Get(cfg.Buffer)
			if err != nil {
				return err
			}
			if buf.Data == nil {
				return fmt.Errorf("opencl: VM kernel %q: buffer %q has no functional payload", cfg.Name, cfg.Buffer)
			}
			var args [8]float64
			if cfg.Args != nil {
				if args, err = cfg.Args(ctx); err != nil {
					return err
				}
			}
			for _, h := range cfg.Fixed {
				if _, err := h(buf.Data.Data, args); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return k, nil
}
