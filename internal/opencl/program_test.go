package opencl

import (
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/pimvm"
	"heteropim/internal/tensor"
)

// TestVMKernelRunsOnProgrammablePIM executes a real relu program
// (binary #2) on the programmable-PIM device through the OpenCL layer.
func TestVMKernelRunsOnProgrammablePIM(t *testing.T) {
	p := heteroPlatform(t)
	data, _ := tensor.FromSlice([]float32{-2, -1, 0, 1, 2, 0, 0, 0, 0, 0}, 10)
	if _, err := p.Memory.Alloc("buf", 0, data); err != nil {
		t.Fatal(err)
	}
	k, err := VMKernel(VMKernelConfig{
		Name:    "relu_vm",
		Op:      nn.OpRelu,
		Program: pimvm.Library()["relu"],
		Buffer:  "buf",
		Args: func(ctx *ExecContext) ([8]float64, error) {
			return [8]float64{0, 5, 5}, nil // x=0, dst=5, n=5
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p.Prog[0].Queue().EnqueueKernel(bs.Binaries[BinProgFull], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 0, 1, 2}
	for i, w := range want {
		if data.Data[5+i] != w {
			t.Fatalf("relu[%d] = %g, want %g", i, data.Data[5+i], w)
		}
	}
}

// TestVMKernelRecursiveBinary runs a Fig. 6-style recursive kernel: the
// programmable program calls a fixed-function handler through the
// OpenCL recursive-call gate.
func TestVMKernelRecursiveBinary(t *testing.T) {
	p := heteroPlatform(t)
	data := tensor.New(8)
	if _, err := p.Memory.Alloc("acc", 0, data); err != nil {
		t.Fatal(err)
	}
	calls := 0
	k, err := VMKernel(VMKernelConfig{
		Name:    "Conv2DBackpropFilter_vm",
		Op:      nn.OpConv2DBackpropFilter,
		Program: pimvm.Library()["recursive_conv"],
		Buffer:  "acc",
		Args: func(ctx *ExecContext) ([8]float64, error) {
			return [8]float64{0, 8, 0.25}, nil // dst=0, n=8, scale=0.25
		},
		Fixed: map[int]pimvm.FixedHandler{
			0: func(mem []float32, args [8]float64) (uint64, error) {
				calls++
				for i := 0; i < 8; i++ {
					mem[i] += 4
				}
				return 500, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Has(BinProgRecursive) {
		t.Fatal("Conv2DBackpropFilter must compile a recursive binary")
	}
	ev, err := p.Prog[0].Queue().EnqueueKernel(bs.Binaries[BinProgRecursive], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("fixed handler called %d times, want 2", calls)
	}
	for i := 0; i < 8; i++ {
		if data.Data[i] != 2 { // (0 +4 +4) * 0.25
			t.Fatalf("acc[%d] = %g, want 2", i, data.Data[i])
		}
	}
}

// TestVMKernelRecursiveRejectedOnFullBinary: the same kernel run as the
// plain programmable binary (#2) must fail at the first recursive call
// (no recursive privileges outside binary #4).
func TestVMKernelRecursiveRejectedOnFullBinary(t *testing.T) {
	p := heteroPlatform(t)
	data := tensor.New(4)
	if _, err := p.Memory.Alloc("acc2", 0, data); err != nil {
		t.Fatal(err)
	}
	k, err := VMKernel(VMKernelConfig{
		Name:    "sneaky_vm",
		Op:      nn.OpConv2DBackpropFilter,
		Program: pimvm.Library()["recursive_conv"],
		Buffer:  "acc2",
		Args: func(ctx *ExecContext) ([8]float64, error) {
			return [8]float64{0, 4, 1}, nil
		},
		Fixed: map[int]pimvm.FixedHandler{
			0: func(mem []float32, args [8]float64) (uint64, error) { return 0, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, _ := Compile(k)
	ev, err := p.Prog[0].Queue().EnqueueKernel(bs.Binaries[BinProgFull], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Wait() == nil {
		t.Fatal("recursive call from binary #2 must fail")
	}
}

// TestVMKernelFixedBinary runs the extracted sections directly on the
// fixed-function device (binary #3).
func TestVMKernelFixedBinary(t *testing.T) {
	p := heteroPlatform(t)
	data := tensor.New(4)
	if _, err := p.Memory.Alloc("acc3", 0, data); err != nil {
		t.Fatal(err)
	}
	k, err := VMKernel(VMKernelConfig{
		Name:    "fixed_only",
		Op:      nn.OpConv2D,
		Program: pimvm.Library()["recursive_conv"],
		Buffer:  "acc3",
		Fixed: map[int]pimvm.FixedHandler{
			0: func(mem []float32, args [8]float64) (uint64, error) {
				for i := range mem[:4] {
					mem[i] = 7
				}
				return 100, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, _ := Compile(k)
	ev, err := p.Fixed.Queue().EnqueueKernel(bs.Binaries[BinFixed], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	if data.Data[0] != 7 {
		t.Fatal("fixed binary did not execute the extracted section")
	}
}

func TestVMKernelErrors(t *testing.T) {
	if _, err := VMKernel(VMKernelConfig{Name: "noprog"}); err == nil {
		t.Fatal("missing program must error")
	}
	p, err := NewPlatform(hw.PaperConfig(hw.ConfigHeteroPIM))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	k, err := VMKernel(VMKernelConfig{
		Name:    "nobuf",
		Op:      nn.OpRelu,
		Program: pimvm.Library()["relu"],
		Buffer:  "missing",
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, _ := Compile(k)
	ev, err := p.Prog[0].Queue().EnqueueKernel(bs.Binaries[BinProgFull], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Wait() == nil {
		t.Fatal("missing buffer must surface as a kernel error")
	}
	// Simulation-only buffer (no tensor payload).
	if _, err := p.Memory.Alloc("simonly", 64, nil); err != nil {
		t.Fatal(err)
	}
	k2, _ := VMKernel(VMKernelConfig{Name: "nopayload", Op: nn.OpRelu,
		Program: pimvm.Library()["relu"], Buffer: "simonly"})
	bs2, _ := Compile(k2)
	ev2, err := p.Prog[0].Queue().EnqueueKernel(bs2.Binaries[BinProgFull], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Wait() == nil {
		t.Fatal("payload-less buffer must surface as a kernel error")
	}
}
