package opencl

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/tensor"
)

func heteroPlatform(t testing.TB) *Platform {
	t.Helper()
	p, err := NewPlatform(hw.PaperConfig(hw.ConfigHeteroPIM))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPlatformMapping(t *testing.T) {
	p := heteroPlatform(t)
	if p.Host == nil || p.Host.Kind != HostCPU {
		t.Fatal("platform must have a host device")
	}
	if p.Fixed == nil {
		t.Fatal("hetero platform must have the fixed-function device")
	}
	// All fixed-function PIMs form ONE compute device; banks are its
	// compute units (Fig. 5b).
	if p.Fixed.PEs != hw.PaperFixedUnits-hw.ProgPIMAreaInFixedUnits {
		t.Errorf("fixed device PEs = %d", p.Fixed.PEs)
	}
	if p.Fixed.ComputeUnits != hw.PaperBanks {
		t.Errorf("fixed device compute units = %d, want %d banks", p.Fixed.ComputeUnits, hw.PaperBanks)
	}
	// Each programmable PIM processor is its own compute device.
	if len(p.Prog) != 1 {
		t.Fatalf("prog devices = %d, want 1", len(p.Prog))
	}
	if p.Prog[0].PEs != 4 {
		t.Errorf("prog device PEs = %d, want 4 cores", p.Prog[0].PEs)
	}
	if len(p.Devices()) != 3 {
		t.Errorf("device count = %d, want 3", len(p.Devices()))
	}
}

func TestPlatformCPUOnlyHasNoPIMDevices(t *testing.T) {
	p, err := NewPlatform(hw.PaperConfig(hw.ConfigCPU))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Fixed != nil || len(p.Prog) != 0 {
		t.Fatal("CPU platform must expose no PIM devices")
	}
}

func TestPlatformRejectsInvalidConfig(t *testing.T) {
	cfg := hw.PaperConfig(hw.ConfigHeteroPIM)
	cfg.CPU.Cores = 0
	if _, err := NewPlatform(cfg); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestDeviceKindStrings(t *testing.T) {
	if HostCPU.String() != "host-cpu" || FixedFunctionPIM.String() != "fixed-function-pim" ||
		ProgrammablePIM.String() != "programmable-pim" || DeviceKind(9).String() != "unknown" {
		t.Fatal("DeviceKind.String mismatch")
	}
}

func TestCompileBinaryGeneration(t *testing.T) {
	// Conv2DBackpropFilter: partially decomposable -> all four binaries.
	bs, err := Compile(&Kernel{Name: "cf", Op: nn.OpConv2DBackpropFilter})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []BinaryKind{BinCPU, BinProgFull, BinFixed, BinProgRecursive} {
		if !bs.Has(kind) {
			t.Errorf("Conv2DBackpropFilter missing binary %v", kind)
		}
	}
	if bs.FullyFixed() {
		t.Error("Conv2DBackpropFilter must not be fully fixed (Fig. 6 phases)")
	}
	// Relu: conditional, fixed-ineligible -> no fixed or recursive
	// binary (execution-model rule of Section III-B).
	bs, err = Compile(&Kernel{Name: "relu", Op: nn.OpRelu})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Has(BinFixed) || bs.Has(BinProgRecursive) {
		t.Error("Relu must not get fixed-function binaries")
	}
	if !bs.Has(BinCPU) || !bs.Has(BinProgFull) {
		t.Error("Relu must still get CPU and programmable binaries")
	}
	// BiasAdd is pure adds -> fully fixed.
	bs, err = Compile(&Kernel{Name: "ba", Op: nn.OpBiasAdd})
	if err != nil {
		t.Fatal(err)
	}
	if !bs.FullyFixed() {
		t.Error("BiasAdd should compile to a fully-fixed binary")
	}
	if _, err := Compile(nil); err == nil {
		t.Error("nil kernel must fail to compile")
	}
	if _, err := Compile(&Kernel{Op: nn.OpRelu}); err == nil {
		t.Error("unnamed kernel must fail to compile")
	}
}

func TestBinaryKindStrings(t *testing.T) {
	want := map[BinaryKind]string{
		BinCPU: "#1-cpu", BinFixed: "#3-fixed",
		BinProgRecursive: "#4-prog-recursive", BinProgFull: "#2-prog-full",
		BinaryKind(9): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestQueueExecutesInOrder(t *testing.T) {
	p := heteroPlatform(t)
	var order []int
	var mu atomic.Int32
	k := func(i int) *Kernel {
		return &Kernel{Name: "k", Op: nn.OpAdd, Body: func(ctx *ExecContext) error {
			for !mu.CompareAndSwap(0, 1) {
			}
			order = append(order, i)
			mu.Store(0)
			return nil
		}}
	}
	q := p.Host.Queue()
	var evs []*Event
	for i := 0; i < 10; i++ {
		bs, _ := Compile(k(i))
		ev, err := q.EnqueueKernel(bs.Binaries[BinCPU], p.Memory, nil)
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	for _, ev := range evs {
		if err := ev.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("in-order queue ran out of order: %v", order)
		}
	}
}

func TestQueueRejectsWrongDevice(t *testing.T) {
	p := heteroPlatform(t)
	bs, _ := Compile(&Kernel{Name: "conv", Op: nn.OpConv2D})
	if _, err := p.Host.Queue().EnqueueKernel(bs.Binaries[BinFixed], p.Memory, nil); err == nil {
		t.Error("fixed binary on host queue must be rejected")
	}
	if _, err := p.Fixed.Queue().EnqueueKernel(bs.Binaries[BinCPU], p.Memory, nil); err == nil {
		t.Error("CPU binary on fixed queue must be rejected")
	}
	if _, err := p.Prog[0].Queue().EnqueueKernel(bs.Binaries[BinFixed], p.Memory, nil); err == nil {
		t.Error("fixed binary on prog queue must be rejected")
	}
	if _, err := p.Host.Queue().EnqueueKernel(nil, p.Memory, nil); err == nil {
		t.Error("nil binary must be rejected")
	}
}

func TestKernelErrorsPropagate(t *testing.T) {
	p := heteroPlatform(t)
	boom := errors.New("boom")
	bs, _ := Compile(&Kernel{Name: "bad", Op: nn.OpAdd, Body: func(ctx *ExecContext) error { return boom }})
	ev, err := p.Host.Queue().EnqueueKernel(bs.Binaries[BinCPU], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ev.Wait(); !errors.Is(got, boom) {
		t.Fatalf("event error = %v, want boom", got)
	}
	if !ev.Completed() {
		t.Fatal("event must read completed after Wait")
	}
}

func TestRecursiveKernelInvocation(t *testing.T) {
	p := heteroPlatform(t)
	var fixedRuns atomic.Int32
	k := &Kernel{
		Name: "Conv2DBackpropFilter",
		Op:   nn.OpConv2DBackpropFilter,
		Body: func(ctx *ExecContext) error {
			// Phase 1 ... then offload the convolution to fixed PIMs,
			// twice, as in Fig. 6.
			if err := ctx.CallFixed(); err != nil {
				return err
			}
			if err := ctx.CallFixed(); err != nil {
				return err
			}
			if ctx.RecursiveCalls() != 2 {
				t.Errorf("recursive calls = %d", ctx.RecursiveCalls())
			}
			return nil
		},
		FixedBody: func(ctx *ExecContext) error {
			fixedRuns.Add(1)
			return nil
		},
	}
	bs, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p.Prog[0].Queue().EnqueueKernel(bs.Binaries[BinProgRecursive], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	if fixedRuns.Load() != 2 {
		t.Fatalf("fixed body ran %d times, want 2", fixedRuns.Load())
	}
}

func TestRecursiveCallRejectedOutsideRecursiveBinary(t *testing.T) {
	p := heteroPlatform(t)
	k := &Kernel{
		Name: "sneaky",
		Op:   nn.OpConv2D,
		Body: func(ctx *ExecContext) error { return ctx.CallFixed() },
	}
	bs, _ := Compile(k)
	ev, err := p.Host.Queue().EnqueueKernel(bs.Binaries[BinCPU], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Wait() == nil {
		t.Fatal("recursive call from a CPU binary must fail")
	}
}

func TestFunctionalKernelOnSharedMemory(t *testing.T) {
	// End to end: allocate shared buffers, run a vector-add through the
	// fixed-function device, verify the result — no data copies anywhere.
	p := heteroPlatform(t)
	a, _ := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	b, _ := tensor.FromSlice([]float32{10, 20, 30, 40}, 4)
	c := tensor.New(4)
	for name, tt := range map[string]*tensor.Tensor{"a": a, "b": b, "c": c} {
		if _, err := p.Memory.Alloc(name, 0, tt); err != nil {
			t.Fatal(err)
		}
	}
	k := &Kernel{
		Name: "vadd",
		Op:   nn.OpAdd,
		FixedBody: func(ctx *ExecContext) error {
			ab, _ := ctx.Memory.Get("a")
			bb, _ := ctx.Memory.Get("b")
			cb, _ := ctx.Memory.Get("c")
			sum, err := tensor.Add(ab.Data, bb.Data)
			if err != nil {
				return err
			}
			copy(cb.Data.Data, sum.Data)
			ctx.Memory.Touch(cb, float64(cb.Data.Bytes()), hmc.PIMPath)
			return nil
		},
	}
	bs, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p.Fixed.Queue().EnqueueKernel(bs.Binaries[BinFixed], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float32{11, 22, 33, 44} {
		if c.Data[i] != want {
			t.Fatalf("c[%d] = %g, want %g", i, c.Data[i], want)
		}
	}
	if p.Memory.Stack().PIMBytes() == 0 {
		t.Fatal("PIM-path traffic was not recorded")
	}
}

func TestGlobalMemoryAllocFreeLocks(t *testing.T) {
	p := heteroPlatform(t)
	buf, err := p.Memory.Alloc("weights", 10e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf.Banks) == 0 {
		t.Fatal("buffer has no bank placement")
	}
	if _, err := p.Memory.Alloc("weights", 1, nil); err == nil {
		t.Fatal("double alloc must error")
	}
	if _, err := p.Memory.Alloc("neg", -5, nil); err == nil {
		t.Fatal("negative alloc must error")
	}
	if _, err := p.Memory.Get("weights"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Memory.Get("nope"); err == nil {
		t.Fatal("missing buffer must error")
	}
	l1 := p.Memory.GlobalLock("sync0")
	l2 := p.Memory.GlobalLock("sync0")
	if l1 != l2 {
		t.Fatal("global locks must be stable by name")
	}
	if err := p.Memory.Free("weights"); err != nil {
		t.Fatal(err)
	}
	if err := p.Memory.Free("weights"); err == nil {
		t.Fatal("double free must error")
	}
}

func TestLargeBufferSpreadsAcrossBanks(t *testing.T) {
	p := heteroPlatform(t)
	buf, err := p.Memory.Alloc("activations", 64e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf.Banks) < 8 {
		t.Fatalf("64MB buffer placed on only %d banks", len(buf.Banks))
	}
}

func TestFinishDrainsAllQueues(t *testing.T) {
	p := heteroPlatform(t)
	var ran atomic.Int32
	bs, _ := Compile(&Kernel{Name: "slow", Op: nn.OpAdd, Body: func(ctx *ExecContext) error {
		ran.Add(1)
		return nil
	}})
	for i := 0; i < 5; i++ {
		if _, err := p.Host.Queue().EnqueueKernel(bs.Binaries[BinCPU], p.Memory, nil); err != nil {
			t.Fatal(err)
		}
	}
	p.Finish()
	if ran.Load() != 5 {
		t.Fatalf("Finish returned with %d of 5 kernels done", ran.Load())
	}
	if ev, err := p.Host.Queue().EnqueueBarrier(); err != nil || ev.Wait() != nil {
		t.Fatal("barrier after finish failed")
	}
}

func TestClosedQueueRejectsWork(t *testing.T) {
	p, err := NewPlatform(hw.PaperConfig(hw.ConfigHeteroPIM))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	bs, _ := Compile(&Kernel{Name: "late", Op: nn.OpAdd})
	if _, err := p.Host.Queue().EnqueueKernel(bs.Binaries[BinCPU], p.Memory, nil); err == nil {
		t.Fatal("closed queue must reject kernels")
	}
}

func TestEventWaitListOrdersAcrossQueues(t *testing.T) {
	p := heteroPlatform(t)
	var order []string
	var mu sync.Mutex
	record := func(tag string) func(ctx *ExecContext) error {
		return func(ctx *ExecContext) error {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
			return nil
		}
	}
	// A fixed-function kernel, then a programmable kernel that waits on
	// it, then a host kernel that waits on the programmable one.
	fixedK, _ := Compile(&Kernel{Name: "a", Op: nn.OpConv2D, FixedBody: record("fixed")})
	progK, _ := Compile(&Kernel{Name: "b", Op: nn.OpRelu, Body: record("prog")})
	hostK, _ := Compile(&Kernel{Name: "c", Op: nn.OpReshape, Body: record("host")})
	ev1, err := p.Fixed.Queue().EnqueueKernel(fixedK.Binaries[BinFixed], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := p.Prog[0].Queue().EnqueueKernelAfter(progK.Binaries[BinProgFull], p.Memory, nil, ev1)
	if err != nil {
		t.Fatal(err)
	}
	ev3, err := p.Host.Queue().EnqueueKernelAfter(hostK.Binaries[BinCPU], p.Memory, nil, ev2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev3.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "fixed" || order[1] != "prog" || order[2] != "host" {
		t.Fatalf("cross-queue order = %v", order)
	}
}

func TestEventWaitListPropagatesFailure(t *testing.T) {
	p := heteroPlatform(t)
	boom := errors.New("boom")
	bad, _ := Compile(&Kernel{Name: "bad", Op: nn.OpAdd, Body: func(ctx *ExecContext) error { return boom }})
	dependent, _ := Compile(&Kernel{Name: "dep", Op: nn.OpAdd, Body: func(ctx *ExecContext) error { return nil }})
	ev1, err := p.Host.Queue().EnqueueKernel(bad.Binaries[BinCPU], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := p.Host.Queue().EnqueueKernelAfter(dependent.Binaries[BinCPU], p.Memory, nil, ev1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ev2.Wait(); got == nil || !errors.Is(got, boom) {
		t.Fatalf("dependency failure not propagated: %v", got)
	}
	if _, err := p.Host.Queue().EnqueueKernelAfter(dependent.Binaries[BinCPU], p.Memory, nil, nil); err == nil {
		t.Fatal("nil event in wait list must be rejected")
	}
}

func TestRegistersTrackPIMKernels(t *testing.T) {
	// The Fig. 7 registers observe PIM kernel execution: busy during a
	// kernel, idle after Finish.
	p := heteroPlatform(t)
	release := make(chan struct{})
	started := make(chan struct{})
	k, _ := Compile(&Kernel{Name: "slow", Op: nn.OpRelu, Body: func(ctx *ExecContext) error {
		close(started)
		<-release
		return nil
	}})
	ev, err := p.Prog[0].Queue().EnqueueKernel(k.Binaries[BinProgFull], p.Memory, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !p.Regs.IsProcessorBusy(0) {
		t.Error("processor register not busy during kernel execution")
	}
	close(release)
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	p.Finish()
	if p.Regs.IsProcessorBusy(0) {
		t.Error("processor register still busy after completion")
	}
}
