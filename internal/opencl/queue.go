package opencl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"heteropim/internal/pim"
)

// Event is the completion handle of an enqueued command, as in OpenCL.
type Event struct {
	done chan struct{}
	err  atomic.Value // error
}

func newEvent() *Event { return &Event{done: make(chan struct{})} }

// Wait blocks until the command finished and returns its error.
func (e *Event) Wait() error {
	<-e.done
	if v := e.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Completed reports whether the command finished (non-blocking), the
// queue-side half of pimQueryCompletion.
func (e *Event) Completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

func (e *Event) finish(err error) {
	if err != nil {
		e.err.Store(err)
	}
	close(e.done)
}

// ExecContext is what a kernel body receives: the device it runs on,
// the global memory, and — on programmable PIM devices — the ability to
// recursively invoke the kernel's fixed-function sections (Fig. 6).
type ExecContext struct {
	Device *Device
	Memory *GlobalMemory
	// Args carries kernel arguments (buffers, scalars) by name.
	Args map[string]any
	// kernel is the kernel being executed.
	kernel *Kernel
	// recursiveCalls counts CallFixed invocations (the runtime charges
	// cheap PIM<->PIM synchronizations for them instead of host syncs).
	recursiveCalls int
	// allowRecursive is set when executing binary #4 on a programmable
	// PIM device.
	allowRecursive bool
}

// CallFixed recursively invokes the kernel's extracted fixed-function
// section. Only programmable-PIM devices executing the recursive binary
// may do this — the host must instead enqueue BinFixed itself.
func (c *ExecContext) CallFixed() error {
	if err := c.NoteFixedCall(); err != nil {
		return err
	}
	if c.kernel.FixedBody != nil {
		sub := *c
		sub.allowRecursive = false
		return c.kernel.FixedBody(&sub)
	}
	return nil
}

// NoteFixedCall validates and records a recursive fixed-function call
// without executing the kernel's FixedBody — for callers (e.g. pimvm
// integration) that run the section themselves.
func (c *ExecContext) NoteFixedCall() error {
	if !c.allowRecursive {
		return fmt.Errorf("opencl: kernel %q: recursive fixed-function call outside a programmable-PIM recursive binary", c.kernel.Name)
	}
	c.recursiveCalls++
	return nil
}

// RecursiveCalls reports how many fixed-function sub-kernels were
// launched from this execution.
func (c *ExecContext) RecursiveCalls() int { return c.recursiveCalls }

// command is one queue entry.
type command struct {
	run   func() error
	event *Event
}

// CommandQueue is an in-order OpenCL command queue attached to a device.
type CommandQueue struct {
	device *Device
	regs   *pim.Registers
	mu     sync.Mutex
	cond   *sync.Cond
	items  []command
	closed bool
	idle   bool
}

func newQueue(d *Device, regs *pim.Registers) *CommandQueue {
	q := &CommandQueue{device: d, regs: regs, idle: true}
	q.cond = sync.NewCond(&q.mu)
	go q.loop()
	return q
}

func (q *CommandQueue) loop() {
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.idle = true
			q.cond.Broadcast()
			q.cond.Wait()
		}
		if q.closed && len(q.items) == 0 {
			q.idle = true
			q.cond.Broadcast()
			q.mu.Unlock()
			return
		}
		cmd := q.items[0]
		q.items = q.items[1:]
		q.idle = false
		q.mu.Unlock()
		cmd.event.finish(cmd.run())
	}
}

// EnqueueKernel submits a binary for execution with the given arguments
// and returns its event. Launches are asynchronous, so computation on
// the host can overlap with PIM execution (Section III-B: "PIM kernel
// calls can be launched asynchronously").
func (q *CommandQueue) EnqueueKernel(bin *Binary, mem *GlobalMemory, args map[string]any) (*Event, error) {
	return q.EnqueueKernelAfter(bin, mem, args)
}

// EnqueueKernelAfter is EnqueueKernel with an OpenCL event wait list:
// the command blocks until every listed event (possibly from another
// device's queue) completes — the explicit cross-PIM synchronization of
// the extended memory model (Table II). A failed dependency fails the
// dependent command.
func (q *CommandQueue) EnqueueKernelAfter(bin *Binary, mem *GlobalMemory, args map[string]any, waits ...*Event) (*Event, error) {
	if bin == nil || bin.Kernel == nil {
		return nil, fmt.Errorf("opencl: enqueueing nil binary")
	}
	switch bin.Kind {
	case BinCPU:
		if q.device.Kind != HostCPU {
			return nil, fmt.Errorf("opencl: binary %v cannot run on %s", bin.Kind, q.device.Name())
		}
	case BinFixed:
		if q.device.Kind != FixedFunctionPIM {
			return nil, fmt.Errorf("opencl: binary %v cannot run on %s", bin.Kind, q.device.Name())
		}
	case BinProgFull, BinProgRecursive:
		if q.device.Kind != ProgrammablePIM {
			return nil, fmt.Errorf("opencl: binary %v cannot run on %s", bin.Kind, q.device.Name())
		}
	}
	ctx := &ExecContext{
		Device:         q.device,
		Memory:         mem,
		Args:           args,
		kernel:         bin.Kernel,
		allowRecursive: bin.Kind == BinProgRecursive,
	}
	body := bin.Kernel.Body
	if bin.Kind == BinFixed {
		body = bin.Kernel.FixedBody
	}
	for _, ev := range waits {
		if ev == nil {
			return nil, fmt.Errorf("opencl: nil event in wait list for kernel %q", bin.Kernel.Name)
		}
	}
	return q.enqueue(func() error {
		for _, ev := range waits {
			if err := ev.Wait(); err != nil {
				return fmt.Errorf("opencl: kernel %q: dependency failed: %w", bin.Kernel.Name, err)
			}
		}
		// Track PIM executions in the Fig. 7 status registers (the
		// Table III pimOffload/pimQueryCompletion contract).
		var tok pim.OpToken
		tracked := false
		if q.regs != nil {
			switch q.device.Kind {
			case FixedFunctionPIM:
				if t, err := q.regs.Offload(pim.Location{Banks: []int{0}}); err == nil {
					tok, tracked = t, true
				}
			case ProgrammablePIM:
				if t, err := q.regs.Offload(pim.Location{OnProgrammable: true, Processor: q.device.Index}); err == nil {
					tok, tracked = t, true
				}
			}
		}
		defer func() {
			if tracked {
				_ = q.regs.Complete(tok)
			}
		}()
		if body == nil {
			return nil // simulation-only kernel
		}
		return body(ctx)
	})
}

// EnqueueBarrier inserts a barrier: its event completes when everything
// enqueued before it has completed (in-order queue semantics make this
// a marker).
func (q *CommandQueue) EnqueueBarrier() (*Event, error) {
	return q.enqueue(func() error { return nil })
}

func (q *CommandQueue) enqueue(run func() error) (*Event, error) {
	ev := newEvent()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, fmt.Errorf("opencl: queue for %s is closed", q.device.Name())
	}
	q.items = append(q.items, command{run: run, event: ev})
	q.cond.Broadcast()
	return ev, nil
}

// Finish blocks until the queue drains (clFinish).
func (q *CommandQueue) Finish() {
	q.mu.Lock()
	for len(q.items) > 0 || !q.idle {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

func (q *CommandQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
