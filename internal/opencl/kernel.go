package opencl

import (
	"fmt"

	"heteropim/internal/nn"
)

// Kernel is one OpenCL kernel implementing an NN training operation.
// The functional Body is optional: simulation-only kernels carry just
// the op type (which fixes eligibility and decomposability via the nn
// profile tables).
type Kernel struct {
	Name string
	Op   nn.OpType
	// Body is the host/programmable-PIM implementation.
	Body func(ctx *ExecContext) error
	// FixedBody is the extracted multiply/add inner section that binary
	// #3 runs on fixed-function PIMs (Fig. 4); called through
	// ExecContext.CallFixed from recursive kernels.
	FixedBody func(ctx *ExecContext) error
}

// BinaryKind enumerates the four binaries of Fig. 4.
type BinaryKind int

const (
	// BinCPU (#1) runs the whole kernel on the host CPU.
	BinCPU BinaryKind = iota
	// BinFixed (#3) is the set of small kernels extracted from the
	// multiply/add sections, loadable on fixed-function PIMs.
	BinFixed
	// BinProgRecursive (#4) runs on the programmable PIM with the
	// extracted sections replaced by recursive calls to BinFixed.
	BinProgRecursive
	// BinProgFull (#2) runs the whole kernel on the programmable PIM.
	BinProgFull
)

// String implements fmt.Stringer with Fig. 4's numbering.
func (k BinaryKind) String() string {
	switch k {
	case BinCPU:
		return "#1-cpu"
	case BinFixed:
		return "#3-fixed"
	case BinProgRecursive:
		return "#4-prog-recursive"
	case BinProgFull:
		return "#2-prog-full"
	default:
		return "unknown"
	}
}

// Binary is one compiled artifact for a kernel.
type Binary struct {
	Kind   BinaryKind
	Kernel *Kernel
	// DecomposableFrac is the share of the kernel's arithmetic this
	// binary offloads to fixed-function PIMs (BinFixed and
	// BinProgRecursive only).
	DecomposableFrac float64
}

// BinarySet is the result of compiling one kernel: up to four binaries.
type BinarySet struct {
	Kernel   *Kernel
	Binaries map[BinaryKind]*Binary
}

// Compile lowers a kernel into its binaries following Fig. 4 and the
// execution-model rules of Section III-B: "if the task includes
// instructions that cannot be executed on the fixed-function PIM, then
// the task will not be scheduled ... to run on the fixed-function PIM."
func Compile(k *Kernel) (*BinarySet, error) {
	if k == nil || k.Name == "" {
		return nil, fmt.Errorf("opencl: compiling unnamed kernel")
	}
	prof := nn.ProfileFor(k.Op)
	bs := &BinarySet{Kernel: k, Binaries: map[BinaryKind]*Binary{}}
	bs.Binaries[BinCPU] = &Binary{Kind: BinCPU, Kernel: k}
	if prof.ProgEligible {
		bs.Binaries[BinProgFull] = &Binary{Kind: BinProgFull, Kernel: k}
	}
	if prof.FixedEligible && prof.DecomposableFrac > 0 {
		bs.Binaries[BinFixed] = &Binary{Kind: BinFixed, Kernel: k, DecomposableFrac: prof.DecomposableFrac}
		if prof.ProgEligible {
			// Fig. 6: the extracted sections are replaced with recursive
			// kernel calls and the rest stays on the programmable PIM.
			bs.Binaries[BinProgRecursive] = &Binary{Kind: BinProgRecursive, Kernel: k, DecomposableFrac: prof.DecomposableFrac}
		}
	}
	return bs, nil
}

// Has reports whether the set contains a binary kind.
func (bs *BinarySet) Has(kind BinaryKind) bool {
	_, ok := bs.Binaries[kind]
	return ok
}

// FullyFixed reports whether the op can run entirely on fixed-function
// PIMs (no residual programmable phases at all).
func (bs *BinarySet) FullyFixed() bool {
	b, ok := bs.Binaries[BinFixed]
	return ok && b.DecomposableFrac >= 1
}
