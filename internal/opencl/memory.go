package opencl

import (
	"fmt"
	"sync"

	"heteropim/internal/hmc"
	"heteropim/internal/tensor"
)

// GlobalMemory is the extended memory model of Table II: a single global
// memory, physically the 3D stack, shared by the host and all PIMs in a
// unified address space, with relaxed consistency and explicit
// synchronization. There is no data-copy overhead before/after kernel
// calls — buffers carry bank placement instead of device residency.
type GlobalMemory struct {
	mu      sync.Mutex
	stack   *hmc.Stack
	buffers map[string]*Buffer
	nextBlk int
	locks   map[string]*sync.Mutex
}

// Buffer is one allocation in the shared global memory.
type Buffer struct {
	Name string
	// Data is the functional payload (may be nil for simulation-only
	// buffers that exist just for placement queries).
	Data *tensor.Tensor
	// Bytes is the logical size (Data's size when present).
	Bytes float64
	// Banks lists the stack banks the buffer is interleaved over; the
	// low-level API maps operations to fixed-function PIMs in the same
	// banks as their input data (Section IV-D).
	Banks []int
}

// NewGlobalMemory wraps a stack.
func NewGlobalMemory(stack *hmc.Stack) *GlobalMemory {
	return &GlobalMemory{
		stack:   stack,
		buffers: map[string]*Buffer{},
		locks:   map[string]*sync.Mutex{},
	}
}

// Stack exposes the underlying memory stack (for traffic accounting).
func (m *GlobalMemory) Stack() *hmc.Stack { return m.stack }

// Alloc creates a buffer of the given byte size, block-interleaved over
// the banks. Allocating an existing name fails — the unified address
// space has one owner per name.
func (m *GlobalMemory) Alloc(name string, bytes float64, data *tensor.Tensor) (*Buffer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.buffers[name]; ok {
		return nil, fmt.Errorf("opencl: buffer %q already allocated", name)
	}
	if data != nil {
		bytes = float64(data.Bytes())
	}
	if bytes < 0 {
		return nil, fmt.Errorf("opencl: buffer %q with negative size", name)
	}
	const blockBytes = 256 * 1024
	blocks := int(bytes/blockBytes) + 1
	if blocks > m.stack.Banks() {
		blocks = m.stack.Banks()
	}
	banks := make([]int, 0, blocks)
	seen := map[int]bool{}
	for i := 0; i < blocks; i++ {
		b := m.stack.BankForBlock(m.nextBlk)
		m.nextBlk++
		if !seen[b] {
			seen[b] = true
			banks = append(banks, b)
		}
	}
	buf := &Buffer{Name: name, Data: data, Bytes: bytes, Banks: banks}
	m.buffers[name] = buf
	return buf, nil
}

// Get looks a buffer up.
func (m *GlobalMemory) Get(name string) (*Buffer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.buffers[name]
	if !ok {
		return nil, fmt.Errorf("opencl: no buffer %q", name)
	}
	return b, nil
}

// Free releases a buffer.
func (m *GlobalMemory) Free(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.buffers[name]; !ok {
		return fmt.Errorf("opencl: freeing unknown buffer %q", name)
	}
	delete(m.buffers, name)
	return nil
}

// GlobalLock returns the named global lock variable. These model the
// paper's synchronization "based on global lock variables shared
// between CPU and PIMs" — programmable-PIM kernels may synchronize
// mid-kernel through them.
func (m *GlobalMemory) GlobalLock(name string) *sync.Mutex {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.locks[name]
	if !ok {
		l = &sync.Mutex{}
		m.locks[name] = l
	}
	return l
}

// Touch records traffic against the buffer's banks via the given path,
// split evenly across its banks.
func (m *GlobalMemory) Touch(buf *Buffer, bytes float64, path hmc.AccessPath) {
	if buf == nil || len(buf.Banks) == 0 || bytes <= 0 {
		return
	}
	per := bytes / float64(len(buf.Banks))
	for _, b := range buf.Banks {
		m.stack.Access(b, per, path)
	}
}
