// Package opencl implements the paper's extension of the OpenCL
// programming model for heterogeneous PIM (Section III-B, Table II,
// Fig. 5): a platform of one host plus two kinds of accelerator compute
// devices (fixed-function PIMs and programmable PIMs), in-order command
// queues with events, a single shared global memory, explicit
// host<->PIM synchronization, recursive kernel invocation, and the
// four-binary compilation flow of Fig. 4.
//
// This package provides the *semantics* (what runs where, what may call
// what, which synchronizations occur); the discrete-event simulator
// charges the corresponding time and energy, and the functional path
// executes kernels with real Go bodies on small tensors.
package opencl

import (
	"fmt"

	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/pim"
)

// DeviceKind is the paper's platform-model mapping (Fig. 5b): the host
// CPU, one compute device holding ALL fixed-function PIMs (each bank is
// a compute unit, each unit pair a PE), and one compute device per
// programmable PIM processor (each core a PE).
type DeviceKind int

const (
	// HostCPU is the OpenCL host (and also a compute device: the
	// runtime schedules candidate ops back to it when PIMs are busy).
	HostCPU DeviceKind = iota
	// FixedFunctionPIM is the single compute device aggregating all
	// fixed-function PIMs across banks.
	FixedFunctionPIM
	// ProgrammablePIM is one ARM-class programmable PIM processor.
	ProgrammablePIM
)

// String implements fmt.Stringer.
func (k DeviceKind) String() string {
	switch k {
	case HostCPU:
		return "host-cpu"
	case FixedFunctionPIM:
		return "fixed-function-pim"
	case ProgrammablePIM:
		return "programmable-pim"
	default:
		return "unknown"
	}
}

// Device is one OpenCL compute device.
type Device struct {
	Kind DeviceKind
	// Index distinguishes multiple programmable PIM devices.
	Index int
	// ComputeUnits is the number of compute units (banks for the
	// fixed-function device, 1 for others).
	ComputeUnits int
	// PEs is the total processing-element count (fixed units, or cores).
	PEs int

	queue *CommandQueue
}

// Queue returns the device's in-order command queue.
func (d *Device) Queue() *CommandQueue { return d.queue }

// Name renders a human-readable device name.
func (d *Device) Name() string {
	if d.Kind == ProgrammablePIM {
		return fmt.Sprintf("%s[%d]", d.Kind, d.Index)
	}
	return d.Kind.String()
}

// Platform is the full OpenCL platform over a heterogeneous PIM system.
type Platform struct {
	Host    *Device
	Fixed   *Device // nil when the configuration has no fixed-function PIMs
	Prog    []*Device
	Memory  *GlobalMemory
	Regs    *pim.Registers
	devices []*Device
}

// NewPlatform maps a hardware configuration onto the OpenCL platform
// model of Fig. 5(b).
func NewPlatform(cfg hw.SystemConfig) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stack, err := hmc.New(cfg.Stack)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		Memory: NewGlobalMemory(stack),
		Regs:   pim.NewRegisters(cfg.Stack.Banks, cfg.ProgPIM.Processors),
	}
	p.Host = &Device{Kind: HostCPU, ComputeUnits: 1, PEs: cfg.CPU.Cores}
	p.Host.queue = newQueue(p.Host, p.Regs)
	p.devices = append(p.devices, p.Host)
	if cfg.FixedPIM.Units > 0 {
		placement, err := pim.ThermalPlacement(stack, cfg.FixedPIM.Units)
		if err != nil {
			return nil, err
		}
		busyBanks := 0
		for _, u := range placement.Units {
			if u > 0 {
				busyBanks++
			}
		}
		p.Fixed = &Device{Kind: FixedFunctionPIM, ComputeUnits: busyBanks, PEs: cfg.FixedPIM.Units}
		p.Fixed.queue = newQueue(p.Fixed, p.Regs)
		p.devices = append(p.devices, p.Fixed)
	}
	for i := 0; i < cfg.ProgPIM.Processors; i++ {
		d := &Device{Kind: ProgrammablePIM, Index: i, ComputeUnits: 1, PEs: cfg.ProgPIM.CoresPerProcessor}
		d.queue = newQueue(d, p.Regs)
		p.Prog = append(p.Prog, d)
		p.devices = append(p.devices, d)
	}
	return p, nil
}

// Devices lists every compute device (host first).
func (p *Platform) Devices() []*Device { return p.devices }

// Finish drains every queue (clFinish across the platform) — the
// explicit platform-wide synchronization point of the extended memory
// model.
func (p *Platform) Finish() {
	for _, d := range p.devices {
		d.queue.Finish()
	}
}

// Close shuts down all queues. The platform is unusable afterwards.
func (p *Platform) Close() {
	for _, d := range p.devices {
		d.queue.close()
	}
}
