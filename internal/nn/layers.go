package nn

import "fmt"

// Traffic factors: main-memory bytes of an op expressed as a multiple of
// the tensors it touches. They encode the cache behaviour the paper's
// VTune profiling observed (forward convolutions are cache blocked and
// barely touch DRAM; the backward filter pass re-streams its inputs with
// strided, miss-heavy access; BiasAddGrad's column reduction re-reads dy
// repeatedly), and they are what makes Table I's memory-intensity
// ranking come out of the model.
const (
	trafficConvFwd     = 0.30
	trafficConvBwdF    = 5.0
	trafficConvBwdI    = 2.5
	trafficBiasAdd     = 0.10
	trafficBiasGrad    = 6.0
	trafficRelu        = 0.05
	trafficPool        = 0.10
	trafficPoolGrad    = 0.20
	trafficMatMul      = 0.60
	trafficAdam        = 2.0
	trafficBatchNorm   = 0.40
	trafficElementwise = 0.10
	trafficSlice       = 1.0
)

const bytesPerElem = 4 // FP32

// convGeom computes SAME/VALID output extents.
func convGeom(h, w, fh, fw, stride int, same bool) (oh, ow int) {
	if same {
		oh = (h + stride - 1) / stride
		ow = (w + stride - 1) / stride
		return oh, ow
	}
	return (h-fh)/stride + 1, (w-fw)/stride + 1
}

// builder accumulates ops for one training step of a model.
type builder struct {
	g *Graph
	b int // batch size
	// lastFwd is the op producing the current forward activation.
	lastFwd int
	// layers records everything needed to emit the backward pass.
	layers []layerRecord
	// miscCounter names the framework filler ops.
	miscCounter int
}

// layerKind discriminates layerRecord entries.
type layerKind int

const (
	convLayer layerKind = iota
	fcLayer
	poolLayer
	normLayer
	actLayer
)

// layerRecord captures one emitted forward layer so the backward pass
// can be generated in reverse order with correct dependencies.
type layerRecord struct {
	kind layerKind
	name string
	// forward op IDs
	fwdMain, fwdBias, fwdAct int
	// geometry
	inH, inW, inC    int
	outH, outW, outC int
	fh, fw, stride   int
	window           int
	transposed       bool
	actType          OpType // activation op type (OpRelu / OpTanh / "")
	pooling          OpType // OpMaxPool or OpAvgPool for poolLayer
	params           float64
	biasParams       float64
}

func newBuilder(model string, batch int) *builder {
	return &builder{
		g:       &Graph{Model: model, BatchSize: batch},
		b:       batch,
		lastFwd: -1,
	}
}

// dep returns a dependency list on the current forward head.
func (bd *builder) dep() []int {
	if bd.lastFwd < 0 {
		return nil
	}
	return []int{bd.lastFwd}
}

// elems of a feature map.
func fmElems(b, h, w, c int) float64 { return float64(b) * float64(h) * float64(w) * float64(c) }

// conv emits the forward ops of a convolution layer (Conv2D + BiasAdd +
// activation) and records it for the backward pass. transposed marks
// DCGAN-style fractionally-strided (deconvolution) layers, which cost
// the same arithmetic as a convolution of the output geometry.
func (bd *builder) conv(name string, inH, inW, inC, fh, fw, outC, stride int, same bool, act OpType, transposed bool) {
	outH, outW := convGeom(inH, inW, fh, fw, stride, same)
	if transposed {
		// Fractionally-strided convolution upsamples.
		outH, outW = inH*stride, inW*stride
	}
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: layer %s degenerate output %dx%d", name, outH, outW))
	}
	macs := fmElems(bd.b, outH, outW, outC) * float64(fh*fw*inC)
	xBytes := fmElems(bd.b, inH, inW, inC) * bytesPerElem
	yBytes := fmElems(bd.b, outH, outW, outC) * bytesPerElem
	wBytes := float64(fh*fw*inC*outC) * bytesPerElem
	granule := 2*fh*fw - 1

	mainOp := bd.g.AddOp(Op{
		Name: name + "/" + string(OpConv2D), Type: OpConv2D,
		Muls: macs, Adds: macs, OtherFlops: 0.0003 * macs,
		Bytes:       trafficConvFwd * (xBytes + wBytes + yBytes),
		UnitGranule: granule,
		Inputs:      bd.dep(),
	})
	bias := bd.g.AddOp(Op{
		Name: name + "/" + string(OpBiasAdd), Type: OpBiasAdd,
		Adds:        fmElems(bd.b, outH, outW, outC),
		Bytes:       trafficBiasAdd * yBytes,
		UnitGranule: 1,
		Inputs:      []int{mainOp.ID},
	})
	rec := layerRecord{
		kind: convLayer, name: name,
		fwdMain: mainOp.ID, fwdBias: bias.ID, fwdAct: bias.ID,
		inH: inH, inW: inW, inC: inC,
		outH: outH, outW: outW, outC: outC,
		fh: fh, fw: fw, stride: stride,
		transposed: transposed, actType: act,
		params:     float64(fh * fw * inC * outC),
		biasParams: float64(outC),
	}
	bd.lastFwd = bias.ID
	if act != "" {
		a := bd.g.AddOp(Op{
			Name:        name + "/" + string(act),
			Type:        act,
			OtherFlops:  fmElems(bd.b, outH, outW, outC),
			Bytes:       trafficRelu * 2 * yBytes,
			UnitGranule: 1,
			Inputs:      []int{bias.ID},
		})
		rec.fwdAct = a.ID
		bd.lastFwd = a.ID
	}
	bd.layers = append(bd.layers, rec)
	bd.g.ParamBytes += (rec.params + rec.biasParams) * bytesPerElem
	bd.g.ActivationBytes += yBytes
}

// pool emits a pooling layer.
func (bd *builder) pool(name string, inH, inW, c, window, stride int, kind OpType) {
	outH := (inH-window)/stride + 1
	outW := (inW-window)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: pool %s degenerate output", name))
	}
	xBytes := fmElems(bd.b, inH, inW, c) * bytesPerElem
	yBytes := fmElems(bd.b, outH, outW, c) * bytesPerElem
	op := bd.g.AddOp(Op{
		Name:        name + "/" + string(kind),
		Type:        kind,
		OtherFlops:  fmElems(bd.b, inH, inW, c),
		Bytes:       trafficPool * (xBytes + yBytes),
		UnitGranule: 1,
		Inputs:      bd.dep(),
	})
	if kind == OpAvgPool {
		op.OtherFlops = 0
		op.Adds = fmElems(bd.b, inH, inW, c)
		op.Muls = fmElems(bd.b, outH, outW, c)
		op.UnitGranule = 2*window*window - 1
	}
	bd.layers = append(bd.layers, layerRecord{
		kind: poolLayer, name: name,
		fwdMain: op.ID, fwdAct: op.ID,
		inH: inH, inW: inW, inC: c,
		outH: outH, outW: outW, outC: c,
		window: window, stride: stride,
		pooling: kind,
	})
	bd.lastFwd = op.ID
	bd.g.ActivationBytes += yBytes
}

// batchNorm emits a fused batch-normalization layer over the current map.
func (bd *builder) batchNorm(name string, h, w, c int) {
	elems := fmElems(bd.b, h, w, c)
	yBytes := elems * bytesPerElem
	op := bd.g.AddOp(Op{
		Name: name + "/" + string(OpBatchNorm), Type: OpBatchNorm,
		// Normalization is multiply/add per element; the rsqrt and
		// division happen once per channel, not per element.
		Muls: 2 * elems, Adds: 2 * elems, OtherFlops: 8 * float64(c),
		Bytes:       trafficBatchNorm * 2 * yBytes,
		UnitGranule: 7,
		Inputs:      bd.dep(),
	})
	bd.layers = append(bd.layers, layerRecord{
		kind: normLayer, name: name,
		fwdMain: op.ID, fwdAct: op.ID,
		inH: h, inW: w, inC: c, outH: h, outW: w, outC: c,
		params: 2 * float64(c),
	})
	bd.lastFwd = op.ID
	bd.g.ParamBytes += 2 * float64(c) * bytesPerElem
}

// fc emits a fully-connected layer (MatMul + BiasAdd + activation).
func (bd *builder) fc(name string, in, out int, act OpType) {
	macs := float64(bd.b) * float64(in) * float64(out)
	aBytes := float64(bd.b*in) * bytesPerElem
	wBytes := float64(in*out) * bytesPerElem
	yBytes := float64(bd.b*out) * bytesPerElem
	granule := 127 // 64-wide multiply tree + 63 adders
	mm := bd.g.AddOp(Op{
		Name: name + "/" + string(OpMatMul), Type: OpMatMul,
		Muls: macs, Adds: macs,
		Bytes:       trafficMatMul * (aBytes + wBytes + yBytes),
		UnitGranule: granule,
		Inputs:      bd.dep(),
	})
	bias := bd.g.AddOp(Op{
		Name: name + "/" + string(OpBiasAdd), Type: OpBiasAdd,
		Adds:        float64(bd.b * out),
		Bytes:       trafficBiasAdd * yBytes,
		UnitGranule: 1,
		Inputs:      []int{mm.ID},
	})
	rec := layerRecord{
		kind: fcLayer, name: name,
		fwdMain: mm.ID, fwdBias: bias.ID, fwdAct: bias.ID,
		inC: in, outC: out, actType: act,
		params:     float64(in * out),
		biasParams: float64(out),
	}
	bd.lastFwd = bias.ID
	if act != "" {
		a := bd.g.AddOp(Op{
			Name:        name + "/" + string(act),
			Type:        act,
			OtherFlops:  float64(bd.b * out),
			Bytes:       trafficRelu * 2 * yBytes,
			UnitGranule: 1,
			Inputs:      []int{bias.ID},
		})
		rec.fwdAct = a.ID
		bd.lastFwd = a.ID
	}
	bd.layers = append(bd.layers, rec)
	bd.g.ParamBytes += (rec.params + rec.biasParams) * bytesPerElem
	bd.g.ActivationBytes += yBytes
}

// misc emits one small framework op (Reshape, Sum, Slice...) hanging off
// the current forward head; these are the "Other N ops" rows of Table I.
func (bd *builder) misc(t OpType, elems float64) {
	bd.miscCounter++
	bd.g.AddOp(Op{
		Name:        fmt.Sprintf("misc_%d/%s", bd.miscCounter, t),
		Type:        t,
		OtherFlops:  elems,
		Bytes:       trafficElementwise * elems * bytesPerElem,
		UnitGranule: 1,
		Inputs:      bd.dep(),
	})
}

// loss emits softmax + cross-entropy over `classes` outputs and returns
// the op ID producing the initial gradient.
func (bd *builder) loss(classes int) int {
	elems := float64(bd.b * classes)
	sm := bd.g.AddOp(Op{
		Name: "loss/" + string(OpSoftmax), Type: OpSoftmax,
		OtherFlops:  5 * elems,
		Bytes:       trafficElementwise * 2 * elems * bytesPerElem,
		UnitGranule: 1,
		Inputs:      bd.dep(),
	})
	ce := bd.g.AddOp(Op{
		Name: "loss/" + string(OpCrossEntropy), Type: OpCrossEntropy,
		OtherFlops:  3 * elems,
		Bytes:       trafficElementwise * 2 * elems * bytesPerElem,
		UnitGranule: 1,
		Inputs:      []int{sm.ID},
	})
	bd.lastFwd = ce.ID
	return ce.ID
}

// backward walks the recorded layers in reverse, emitting gradient ops
// and the optimizer updates; gradOp is the op producing dLoss.
func (bd *builder) backward(gradOp int) {
	cur := gradOp
	for i := len(bd.layers) - 1; i >= 0; i-- {
		rec := bd.layers[i]
		switch rec.kind {
		case convLayer:
			cur = bd.convBackward(rec, cur, i == 0)
		case fcLayer:
			cur = bd.fcBackward(rec, cur, i == 0)
		case poolLayer:
			cur = bd.poolBackward(rec, cur)
		case normLayer:
			cur = bd.normBackward(rec, cur)
		}
	}
}

// adam emits the ApplyAdam update for `params` parameters, gated by the
// gradient op. The forward op it guards (nextStepGate) picks up a
// cross-step dependency on the update.
func (bd *builder) adam(name string, params float64, gradID, nextStepGate int) {
	op := bd.g.AddOp(Op{
		Name: name + "/" + string(OpApplyAdam), Type: OpApplyAdam,
		Muls: 6 * params, Adds: 4 * params, OtherFlops: 2 * params,
		Bytes:       trafficAdam * params * bytesPerElem,
		UnitGranule: 16,
		Params:      true,
		Inputs:      []int{gradID},
	})
	if nextStepGate >= 0 {
		g := bd.g.Ops[nextStepGate]
		g.CrossStep = append(g.CrossStep, op.ID)
	}
}

func (bd *builder) convBackward(rec layerRecord, dy int, first bool) int {
	dyElems := fmElems(bd.b, rec.outH, rec.outW, rec.outC)
	dyBytes := dyElems * bytesPerElem
	xBytes := fmElems(bd.b, rec.inH, rec.inW, rec.inC) * bytesPerElem
	wBytes := rec.params * bytesPerElem
	macs := dyElems * float64(rec.fh*rec.fw*rec.inC)
	if rec.transposed {
		macs = fmElems(bd.b, rec.inH, rec.inW, rec.inC) * float64(rec.fh*rec.fw*rec.outC)
	}
	granule := 2*rec.fh*rec.fw - 1
	cur := dy
	if rec.actType != "" {
		ag := bd.g.AddOp(Op{
			Name:        rec.name + "/" + string(rec.actType) + "Grad",
			Type:        gradOf(rec.actType),
			OtherFlops:  2 * dyElems,
			Bytes:       trafficRelu * 2 * dyBytes,
			UnitGranule: 1,
			Inputs:      []int{cur, rec.fwdAct},
		})
		cur = ag.ID
	}
	bag := bd.g.AddOp(Op{
		Name: rec.name + "/" + string(OpBiasAddGrad), Type: OpBiasAddGrad,
		Adds:        dyElems,
		Bytes:       trafficBiasGrad * dyBytes,
		UnitGranule: 31,
		Inputs:      []int{cur},
	})
	bd.adam(rec.name+"/bias", rec.biasParams, bag.ID, rec.fwdBias)
	cf := bd.g.AddOp(Op{
		Name: rec.name + "/" + string(OpConv2DBackpropFilter), Type: OpConv2DBackpropFilter,
		Muls: macs, Adds: macs, OtherFlops: 0.0005 * macs,
		Bytes:       trafficConvBwdF*(xBytes+dyBytes) + wBytes,
		UnitGranule: granule,
		Inputs:      []int{cur},
	})
	bd.adam(rec.name+"/weights", rec.params, cf.ID, rec.fwdMain)
	if first {
		return cur
	}
	ci := bd.g.AddOp(Op{
		Name: rec.name + "/" + string(OpConv2DBackpropInput), Type: OpConv2DBackpropInput,
		Muls: macs, Adds: macs, OtherFlops: 0.0004 * macs,
		Bytes:       trafficConvBwdI*(dyBytes+xBytes) + wBytes,
		UnitGranule: granule,
		Inputs:      []int{cur},
	})
	return ci.ID
}

func (bd *builder) fcBackward(rec layerRecord, dy int, first bool) int {
	macs := float64(bd.b) * float64(rec.inC) * float64(rec.outC)
	dyBytes := float64(bd.b*rec.outC) * bytesPerElem
	xBytes := float64(bd.b*rec.inC) * bytesPerElem
	wBytes := rec.params * bytesPerElem
	cur := dy
	if rec.actType != "" {
		ag := bd.g.AddOp(Op{
			Name:        rec.name + "/" + string(rec.actType) + "Grad",
			Type:        gradOf(rec.actType),
			OtherFlops:  2 * float64(bd.b*rec.outC),
			Bytes:       trafficRelu * 2 * dyBytes,
			UnitGranule: 1,
			Inputs:      []int{cur, rec.fwdAct},
		})
		cur = ag.ID
	}
	bag := bd.g.AddOp(Op{
		Name: rec.name + "/" + string(OpBiasAddGrad), Type: OpBiasAddGrad,
		Adds:        float64(bd.b * rec.outC),
		Bytes:       trafficBiasGrad * dyBytes,
		UnitGranule: 31,
		Inputs:      []int{cur},
	})
	bd.adam(rec.name+"/bias", rec.biasParams, bag.ID, rec.fwdBias)
	// dW = xᵀ·dy
	wg := bd.g.AddOp(Op{
		Name: rec.name + "/MatMul_grad_w", Type: OpMatMul,
		Muls: macs, Adds: macs,
		Bytes:       trafficMatMul * (xBytes + dyBytes + wBytes),
		UnitGranule: 127,
		Inputs:      []int{cur},
	})
	bd.adam(rec.name+"/weights", rec.params, wg.ID, rec.fwdMain)
	if first {
		return cur
	}
	// dx = dy·wᵀ
	xg := bd.g.AddOp(Op{
		Name: rec.name + "/MatMul_grad_x", Type: OpMatMul,
		Muls: macs, Adds: macs,
		Bytes:       trafficMatMul * (dyBytes + wBytes + xBytes),
		UnitGranule: 127,
		Inputs:      []int{cur},
	})
	return xg.ID
}

func (bd *builder) poolBackward(rec layerRecord, dy int) int {
	dyBytes := fmElems(bd.b, rec.outH, rec.outW, rec.outC) * bytesPerElem
	dxBytes := fmElems(bd.b, rec.inH, rec.inW, rec.inC) * bytesPerElem
	t := OpMaxPoolGrad
	if rec.pooling == OpAvgPool {
		t = OpAvgPoolGrad
	}
	op := Op{
		Name:        rec.name + "/" + string(t),
		Type:        t,
		Bytes:       trafficPoolGrad * (dyBytes + dxBytes),
		UnitGranule: 1,
		Inputs:      []int{dy, rec.fwdMain},
	}
	if t == OpAvgPoolGrad {
		op.Adds = fmElems(bd.b, rec.inH, rec.inW, rec.inC)
		op.Muls = fmElems(bd.b, rec.outH, rec.outW, rec.outC)
		op.UnitGranule = 2*rec.window*rec.window - 1
	} else {
		op.OtherFlops = fmElems(bd.b, rec.inH, rec.inW, rec.inC)
	}
	o := bd.g.AddOp(op)
	return o.ID
}

func (bd *builder) normBackward(rec layerRecord, dy int) int {
	elems := fmElems(bd.b, rec.outH, rec.outW, rec.outC)
	op := bd.g.AddOp(Op{
		Name: rec.name + "/" + string(OpBatchNormGrad), Type: OpBatchNormGrad,
		Muls: 3 * elems, Adds: 3 * elems, OtherFlops: 12 * float64(rec.outC),
		Bytes:       trafficBatchNorm * 3 * elems * bytesPerElem,
		UnitGranule: 7,
		Inputs:      []int{dy, rec.fwdMain},
	})
	bd.adam(rec.name+"/scale_offset", rec.params, op.ID, rec.fwdMain)
	return op.ID
}

// gradOf maps an activation op to its gradient op type.
func gradOf(act OpType) OpType {
	switch act {
	case OpRelu:
		return OpReluGrad
	case OpTanh, OpSigmoid:
		// Modeled with the same conditional/transcendental profile.
		return OpReluGrad
	default:
		return OpReluGrad
	}
}
