package nn

import (
	"strings"
	"testing"
)

func lenet() CNNSpec {
	return CNNSpec{
		Name:  "LeNet-ish",
		Batch: 32, InputH: 28, InputW: 28, InputC: 1, Classes: 10,
		Layers: []LayerSpec{
			{Kind: "conv", FH: 5, FW: 5, OutC: 6, Stride: 1, SamePad: true, Activation: "relu"},
			{Kind: "pool", Window: 2, Stride: 2},
			{Kind: "conv", FH: 5, FW: 5, OutC: 16, Stride: 1, SamePad: true, Activation: "relu"},
			{Kind: "pool", Window: 2, Stride: 2},
			{Kind: "fc", Out: 120, Activation: "relu"},
			{Kind: "fc", Out: 84, Activation: "relu"},
			{Kind: "fc", Out: 10},
		},
	}
}

func TestBuildCNNLeNet(t *testing.T) {
	g, err := BuildCNN(lenet())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[OpType]int{}
	for _, op := range g.Ops {
		counts[op.Type]++
	}
	if counts[OpConv2D] != 2 || counts[OpMatMul] < 6 || counts[OpMaxPool] != 2 {
		t.Fatalf("unexpected structure: %v", counts)
	}
	// Conv backprops and Adam updates exist.
	if counts[OpConv2DBackpropFilter] != 2 || counts[OpApplyAdam] == 0 {
		t.Fatalf("backward/optimizer missing: %v", counts)
	}
	// The final fc already has 10 outputs: no extra classifier.
	for _, op := range g.Ops {
		if strings.HasPrefix(op.Name, "classifier/") {
			t.Fatalf("redundant classifier emitted: %s", op.Name)
		}
	}
}

func TestBuildCNNAddsClassifierWhenNeeded(t *testing.T) {
	spec := lenet()
	spec.Layers = spec.Layers[:4] // conv/pool only
	g, err := BuildCNN(spec)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range g.Ops {
		if strings.HasPrefix(op.Name, "classifier/") {
			found = true
		}
	}
	if !found {
		t.Fatal("classifier projection missing")
	}
}

func TestBuildCNNBatchNormAndTransposed(t *testing.T) {
	spec := CNNSpec{
		Name:  "gen",
		Batch: 16, InputH: 7, InputW: 7, InputC: 64, Classes: 1,
		Layers: []LayerSpec{
			{Kind: "batchnorm"},
			{Kind: "conv", FH: 5, FW: 5, OutC: 32, Stride: 2, SamePad: true, Transposed: true, Activation: "tanh"},
			{Kind: "avgpool", Window: 2, Stride: 2},
		},
	}
	g, err := BuildCNN(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpType]int{}
	for _, op := range g.Ops {
		counts[op.Type]++
	}
	if counts[OpBatchNorm] != 1 || counts[OpAvgPool] != 1 || counts[OpTanh] != 1 {
		t.Fatalf("structure: %v", counts)
	}
}

func TestBuildCNNErrors(t *testing.T) {
	base := lenet()
	cases := []func(*CNNSpec){
		func(s *CNNSpec) { s.Name = "" },
		func(s *CNNSpec) { s.Batch = 0 },
		func(s *CNNSpec) { s.InputC = 0 },
		func(s *CNNSpec) { s.Classes = 0 },
		func(s *CNNSpec) { s.Layers = nil },
		func(s *CNNSpec) { s.Layers[0].Kind = "mystery" },
		func(s *CNNSpec) { s.Layers[0].Activation = "gelu" },
		func(s *CNNSpec) { s.Layers[0].FH = 0 },
		func(s *CNNSpec) { s.Layers[1].Window = 0 },
		func(s *CNNSpec) { s.Layers[4].Out = 0 },
		func(s *CNNSpec) { // conv after fc
			s.Layers = append(s.Layers, LayerSpec{Kind: "conv", FH: 3, FW: 3, OutC: 4, Stride: 1})
		},
		func(s *CNNSpec) { // pool collapse
			s.Layers = []LayerSpec{{Kind: "pool", Window: 64, Stride: 64}}
		},
	}
	for i, mutate := range cases {
		spec := lenet()
		mutate(&spec)
		if _, err := BuildCNN(spec); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	_ = base
}

func TestBuildCNNDefaults(t *testing.T) {
	spec := lenet()
	spec.GPUUtilization = 0
	spec.FrameworkOps = 0
	g, err := BuildCNN(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.GPUUtilization != 0.5 {
		t.Fatalf("default GPU utilization = %g", g.GPUUtilization)
	}
	if g.InputBytes != float64(32*28*28*1*4) {
		t.Fatalf("input bytes = %g", g.InputBytes)
	}
}
