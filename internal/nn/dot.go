package nn

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the step DAG in Graphviz DOT format, colored by the
// Fig. 2 class (class 2 offload targets darkest), for visual inspection
// of model structure and dependence chains.
func (g *Graph) WriteDOT(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("digraph ")
	sb.WriteString(fmt.Sprintf("%q", g.Model))
	sb.WriteString(" {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n")
	colors := map[Class]string{
		Class1: "#9ecae1",
		Class2: "#3182bd",
		Class3: "#fdae6b",
		Class4: "#eeeeee",
	}
	classByType := map[OpType]Class{}
	for _, op := range g.Ops {
		if _, ok := classByType[op.Type]; !ok {
			classByType[op.Type] = g.ClassifyType(op.Type)
		}
	}
	for _, op := range g.Ops {
		cl := classByType[op.Type]
		sb.WriteString(fmt.Sprintf("  n%d [label=%q, style=filled, fillcolor=%q];\n",
			op.ID, op.Name, colors[cl]))
	}
	for _, op := range g.Ops {
		for _, in := range op.Inputs {
			sb.WriteString(fmt.Sprintf("  n%d -> n%d;\n", in, op.ID))
		}
		for _, cs := range op.CrossStep {
			sb.WriteString(fmt.Sprintf("  n%d -> n%d [style=dashed, color=gray, label=\"step-1\"];\n", cs, op.ID))
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
