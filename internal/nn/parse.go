package nn

import (
	"fmt"
	"sort"
	"strings"
)

// ModelFlagNames lists the canonical model names ParseModelName
// accepts, sorted.
func ModelFlagNames() []string {
	names := make([]string, 0, len(AllModelNames()))
	for _, m := range AllModelNames() {
		names = append(names, string(m))
	}
	sort.Strings(names)
	return names
}

// ParseModelName resolves a workload model name (case-insensitive:
// "vgg-19" and "VGG-19" both work) to its canonical ModelName. The
// error for an unknown name lists the valid ones. The public
// heteropim.ParseModel delegates here so the CLI flags, the POST body
// and the scenario schema all accept exactly the same spellings.
func ParseModelName(name string) (ModelName, error) {
	for _, m := range AllModelNames() {
		if strings.EqualFold(string(m), name) {
			return m, nil
		}
	}
	return "", fmt.Errorf("heteropim: unknown model %q (valid: %s)",
		name, strings.Join(ModelFlagNames(), ", "))
}
