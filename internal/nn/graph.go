package nn

import (
	"fmt"
	"sort"
)

// Op is one operation instance inside a training step graph.
type Op struct {
	// ID is the index of the op within its Graph.
	ID int
	// Name is the framework-style instance name, e.g.
	// "conv3_2/Conv2DBackpropFilter".
	Name string
	Type OpType

	// Muls and Adds are the multiply/add counts per invocation — the
	// work the fixed-function PIMs can absorb.
	Muls, Adds float64
	// OtherFlops is arithmetic that is not plain multiply/add
	// (comparisons, exponentials, divisions) — programmable-core work.
	OtherFlops float64
	// Bytes is the operation's main-memory traffic per invocation.
	Bytes float64
	// UnitGranule is the number of individual fixed-function units
	// (multipliers + adders) one kernel instance of this op occupies:
	// the paper's 11x11 convolution example occupies 121 multipliers
	// and 120 adders = 241 units. Grants come in multiples of this.
	UnitGranule int
	// Params marks weight-update ops (ApplyAdam): their completion
	// gates the corresponding forward op of the NEXT step.
	Params bool
	// Inputs are IDs of ops inside the same step that must complete
	// first.
	Inputs []int
	// CrossStep are IDs of ops whose *previous-step* instance must
	// complete first (used for weight updates gating the next step's
	// forward ops).
	CrossStep []int
}

// TotalFlops returns all arithmetic of the op.
func (o *Op) TotalFlops() float64 { return o.Muls + o.Adds + o.OtherFlops }

// DecomposableFlops is the portion offloadable to fixed-function PIMs:
// the multiply/add work scaled by the type's decomposable fraction.
// OtherFlops never decomposes — it is the Fig. 6 "computation phases"
// that need a programmable core.
func (o *Op) DecomposableFlops() float64 {
	return (o.Muls + o.Adds) * ProfileFor(o.Type).DecomposableFrac
}

// ResidualFlops is the arithmetic that must run on a programmable
// device (CPU or programmable PIM) even when the op is offloaded.
func (o *Op) ResidualFlops() float64 {
	return o.TotalFlops() - o.DecomposableFlops()
}

// Graph is one training step of a model: a DAG of operations.
type Graph struct {
	Model string
	// BatchSize is the paper's per-model batch size.
	BatchSize int
	Ops       []*Op
	// InputBytes is the size of one minibatch of training data (what a
	// GPU must move across PCIe every step).
	InputBytes float64
	// ParamBytes is the total model parameter footprint.
	ParamBytes float64
	// ActivationBytes is the per-step activation working set.
	ActivationBytes float64
	// GPUUnhiddenTransferFrac is the fraction of the activation working
	// set whose host<->GPU transfer cannot be hidden behind compute
	// (Section VI-A; large-working-set models hide less).
	GPUUnhiddenTransferFrac float64
	// GPUUtilization is the average GPU utilization reported for this
	// model in Section V-D.
	GPUUtilization float64
	// GPUEffFactor is a per-model GPU kernel-efficiency calibration
	// constant (cuDNN efficiency varies strongly with layer geometry);
	// it multiplies the per-op GPU compute efficiency. Zero means 1.
	GPUEffFactor float64
}

// AddOp appends an op, assigning its ID, and returns it.
func (g *Graph) AddOp(op Op) *Op {
	op.ID = len(g.Ops)
	o := &op
	g.Ops = append(g.Ops, o)
	return o
}

// Validate checks that dependencies are well-formed and acyclic.
func (g *Graph) Validate() error {
	n := len(g.Ops)
	for _, op := range g.Ops {
		for _, in := range op.Inputs {
			if in < 0 || in >= n {
				return fmt.Errorf("nn: %s/%s input %d out of range", g.Model, op.Name, in)
			}
			if in == op.ID {
				return fmt.Errorf("nn: %s/%s depends on itself", g.Model, op.Name)
			}
		}
		for _, cs := range op.CrossStep {
			if cs < 0 || cs >= n {
				return fmt.Errorf("nn: %s/%s cross-step input %d out of range", g.Model, op.Name, cs)
			}
		}
		if op.Muls < 0 || op.Adds < 0 || op.OtherFlops < 0 || op.Bytes < 0 {
			return fmt.Errorf("nn: %s/%s has negative cost", g.Model, op.Name)
		}
		if op.UnitGranule < 0 {
			return fmt.Errorf("nn: %s/%s has negative unit granule", g.Model, op.Name)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological order of the step DAG (ignoring
// cross-step edges, which never form cycles within a step).
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.Ops)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, op := range g.Ops {
		for _, in := range op.Inputs {
			succ[in] = append(succ[in], op.ID)
			indeg[op.ID]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("nn: %s step graph has a dependency cycle", g.Model)
	}
	return order, nil
}

// TypeSummary aggregates per-type cost over the step.
type TypeSummary struct {
	Type        OpType
	Invocations int
	Muls, Adds  float64
	OtherFlops  float64
	Bytes       float64
}

// SummarizeByType returns per-op-type aggregates sorted by type name.
func (g *Graph) SummarizeByType() []TypeSummary {
	m := map[OpType]*TypeSummary{}
	for _, op := range g.Ops {
		s, ok := m[op.Type]
		if !ok {
			s = &TypeSummary{Type: op.Type}
			m[op.Type] = s
		}
		s.Invocations++
		s.Muls += op.Muls
		s.Adds += op.Adds
		s.OtherFlops += op.OtherFlops
		s.Bytes += op.Bytes
	}
	out := make([]TypeSummary, 0, len(m))
	for _, s := range m {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// Totals returns the step-wide flop and byte totals.
func (g *Graph) Totals() (flops, bytes float64) {
	for _, op := range g.Ops {
		flops += op.TotalFlops()
		bytes += op.Bytes
	}
	return flops, bytes
}

// Classify assigns the Fig. 2 class to an op. As in the paper's
// profiling, intensity is judged per operation *type* over the whole
// step (Table I aggregates invocations): a type is compute intensive if
// it holds at least 1% of the step's arithmetic, memory intensive if it
// holds at least 1% of the step's main-memory traffic.
func (g *Graph) Classify(op *Op) Class {
	return g.ClassifyType(op.Type)
}

// ClassifyType is Classify for a whole operation type.
func (g *Graph) ClassifyType(t OpType) Class {
	flops, bytes := g.Totals()
	var tf, tb float64
	for _, op := range g.Ops {
		if op.Type == t {
			tf += op.TotalFlops()
			tb += op.Bytes
		}
	}
	ci := flops > 0 && tf >= 0.01*flops
	mi := bytes > 0 && tb >= 0.01*bytes
	switch {
	case ci && mi:
		return Class2
	case ci:
		return Class1
	case mi:
		return Class3
	default:
		return Class4
	}
}

// ClassCounts tallies ops per Fig. 2 class.
func (g *Graph) ClassCounts() map[Class]int {
	out := map[Class]int{}
	for _, op := range g.Ops {
		out[g.Classify(op)]++
	}
	return out
}
