package nn

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func buildAll(t testing.TB) map[ModelName]*Graph {
	t.Helper()
	out := map[ModelName]*Graph{}
	for _, name := range AllModelNames() {
		g, err := Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = g
	}
	return out
}

func TestAllModelsBuildAndValidate(t *testing.T) {
	for name, g := range buildAll(t) {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(g.Ops) < 20 {
			t.Errorf("%s: suspiciously small graph (%d ops)", name, len(g.Ops))
		}
		flops, bytes := g.Totals()
		if flops <= 0 || bytes <= 0 {
			t.Errorf("%s: degenerate totals flops=%g bytes=%g", name, flops, bytes)
		}
		if g.GPUUtilization <= 0 || g.GPUUtilization > 1 {
			t.Errorf("%s: GPU utilization %g out of range", name, g.GPUUtilization)
		}
		if g.InputBytes <= 0 {
			t.Errorf("%s: input bytes %g", name, g.InputBytes)
		}
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build("NoSuchNet"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestVGG19Structure(t *testing.T) {
	g := VGG19()
	counts := map[OpType]int{}
	for _, op := range g.Ops {
		counts[op.Type]++
	}
	// 16 convolution layers, 5 pools, 3 FC layers (Section V-C).
	if counts[OpConv2D] != 16 {
		t.Errorf("Conv2D invocations = %d, want 16", counts[OpConv2D])
	}
	if counts[OpConv2DBackpropFilter] != 16 {
		t.Errorf("Conv2DBackpropFilter invocations = %d, want 16", counts[OpConv2DBackpropFilter])
	}
	// No input gradient for the first conv layer: 15, matching Table I.
	if counts[OpConv2DBackpropInput] != 15 {
		t.Errorf("Conv2DBackpropInput invocations = %d, want 15", counts[OpConv2DBackpropInput])
	}
	if counts[OpMaxPool] != 5 || counts[OpMaxPoolGrad] != 5 {
		t.Errorf("pools = %d/%d, want 5/5", counts[OpMaxPool], counts[OpMaxPoolGrad])
	}
	// 19 Relu activations: 16 conv + 2 of the 3 FC layers + softmax uses
	// none; Table I reports 19 (16 conv + 3 fc in their graph).
	if counts[OpRelu] < 18 {
		t.Errorf("Relu invocations = %d, want >= 18", counts[OpRelu])
	}
	// Every parameter tensor gets an Adam update.
	if counts[OpApplyAdam] != 2*(16+3) {
		t.Errorf("ApplyAdam invocations = %d, want %d", counts[OpApplyAdam], 2*(16+3))
	}
	// VGG-19 has ~143M parameters (ImageNet: 138M conv+fc + fc6 here is
	// 25088x4096); accept the 130M-150M band.
	params := g.ParamBytes / 4
	if params < 130e6 || params > 150e6 {
		t.Errorf("VGG-19 parameters = %g, want ~138M", params)
	}
}

func TestVGG19FlopsBallpark(t *testing.T) {
	g := VGG19()
	// Forward conv MACs for VGG-19 at batch 32 are ~19.5 GMAC/image.
	var fwdMacs float64
	for _, op := range g.Ops {
		if op.Type == OpConv2D {
			fwdMacs += op.Muls
		}
	}
	perImage := fwdMacs / 32
	if perImage < 17e9 || perImage > 22e9 {
		t.Errorf("VGG-19 forward conv MACs/image = %g, want ~19.5G", perImage)
	}
}

func TestAlexNetGranuleMatchesPaperExample(t *testing.T) {
	g := AlexNet()
	// Section III-C: an 11x11 convolution occupies 121 multipliers and
	// 120 adders = 241 fixed-function PIMs.
	found := false
	for _, op := range g.Ops {
		if op.Type == OpConv2D && strings.HasPrefix(op.Name, "conv1/") {
			if op.UnitGranule != 241 {
				t.Errorf("conv1 granule = %d, want 241", op.UnitGranule)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("AlexNet conv1 not found")
	}
}

func TestDCGANHasManySmallOps(t *testing.T) {
	g := DCGAN()
	counts := map[OpType]int{}
	for _, op := range g.Ops {
		counts[op.Type]++
	}
	if counts[OpMul] < 84 {
		t.Errorf("DCGAN Mul invocations = %d, want >= 84 (Table I)", counts[OpMul])
	}
	if counts[OpSlice] < 14 {
		t.Errorf("DCGAN Slice invocations = %d, want >= 14 (Table I)", counts[OpSlice])
	}
	distinct := len(counts)
	if distinct < 15 {
		t.Errorf("DCGAN distinct op types = %d, want a wide mix", distinct)
	}
}

func TestResNet50IsLargestWorkingSet(t *testing.T) {
	models := buildAll(t)
	resnet := models[ResNet50Name]
	for name, g := range models {
		if name == ResNet50Name {
			continue
		}
		if g.ActivationBytes >= resnet.ActivationBytes {
			t.Errorf("%s activation working set (%g) >= ResNet-50 (%g)", name, g.ActivationBytes, resnet.ActivationBytes)
		}
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	g := VGG19()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(g.Ops))
	for i, id := range order {
		pos[id] = i
	}
	for _, op := range g.Ops {
		for _, in := range op.Inputs {
			if pos[in] >= pos[op.ID] {
				t.Fatalf("op %s scheduled before its input %s", op.Name, g.Ops[in].Name)
			}
		}
	}
}

func TestValidateCatchesCycles(t *testing.T) {
	g := &Graph{Model: "cyclic"}
	a := g.AddOp(Op{Name: "a", Type: OpAdd})
	b := g.AddOp(Op{Name: "b", Type: OpAdd, Inputs: []int{a.ID}})
	a.Inputs = []int{b.ID}
	if err := g.Validate(); err == nil {
		t.Fatal("cycle must be detected")
	}
}

func TestValidateCatchesBadInputs(t *testing.T) {
	g := &Graph{Model: "bad"}
	g.AddOp(Op{Name: "a", Type: OpAdd, Inputs: []int{5}})
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range input must be detected")
	}
	g2 := &Graph{Model: "bad2"}
	g2.AddOp(Op{Name: "a", Type: OpAdd, Inputs: []int{0}})
	if err := g2.Validate(); err == nil {
		t.Fatal("self-dependency must be detected")
	}
	g3 := &Graph{Model: "bad3"}
	g3.AddOp(Op{Name: "a", Type: OpAdd, Muls: -1})
	if err := g3.Validate(); err == nil {
		t.Fatal("negative cost must be detected")
	}
	g4 := &Graph{Model: "bad4"}
	g4.AddOp(Op{Name: "a", Type: OpAdd, CrossStep: []int{9}})
	if err := g4.Validate(); err == nil {
		t.Fatal("out-of-range cross-step input must be detected")
	}
}

func TestCrossStepGatesExist(t *testing.T) {
	// ApplyAdam of step s must gate the corresponding forward op of
	// step s+1 (the operation-pipeline correctness condition).
	g := VGG19()
	gated := 0
	for _, op := range g.Ops {
		if len(op.CrossStep) > 0 {
			gated++
			for _, cs := range op.CrossStep {
				if g.Ops[cs].Type != OpApplyAdam {
					t.Errorf("%s cross-step gate is %s, want ApplyAdam", op.Name, g.Ops[cs].Type)
				}
			}
		}
	}
	if gated < 16 {
		t.Errorf("only %d forward ops carry cross-step gates", gated)
	}
}

func TestClassificationCoversFourClasses(t *testing.T) {
	g := VGG19()
	counts := g.ClassCounts()
	if counts[Class2] == 0 {
		t.Error("no class-2 (offload target) ops found")
	}
	if counts[Class4] == 0 {
		t.Error("no class-4 (negligible) ops found")
	}
	// Conv backprops must be class 2 (compute AND memory intensive).
	for _, op := range g.Ops {
		if op.Type == OpConv2DBackpropFilter {
			if c := g.Classify(op); c != Class2 {
				t.Errorf("%s classified %d, want 2", op.Name, c)
			}
		}
	}
}

func TestProfileTableConsistency(t *testing.T) {
	for _, tp := range KnownOpTypes() {
		p := ProfileFor(tp)
		if p.Type != tp {
			t.Errorf("%s: profile type mismatch", tp)
		}
		if p.DecomposableFrac < 0 || p.DecomposableFrac > 1 {
			t.Errorf("%s: decomposable fraction %g out of range", tp, p.DecomposableFrac)
		}
		if p.FixedEligible && p.DecomposableFrac == 0 {
			t.Errorf("%s: fixed-eligible but nothing decomposable", tp)
		}
		if !p.FixedEligible && p.DecomposableFrac > 0 {
			t.Errorf("%s: not fixed-eligible but decomposable fraction %g", tp, p.DecomposableFrac)
		}
		for _, eff := range []float64{p.CPUComputeEff, p.CPUBwEff, p.GPUComputeEff, p.GPUBwEff,
			p.ProgComputeEff, p.ProgBwEff, p.FixedComputeEff, p.FixedBwEff} {
			if eff < 0 || eff > 1 {
				t.Errorf("%s: efficiency %g out of range", tp, eff)
			}
		}
		if ProgParallelismFor(tp) < 1 {
			t.Errorf("%s: prog parallelism < 1", tp)
		}
	}
}

func TestProfileForUnknownType(t *testing.T) {
	p := ProfileFor("SomethingNew")
	if !p.ProgEligible || p.FixedEligible {
		t.Fatal("unknown ops must fall back to programmable-only")
	}
}

func TestSummarizeByType(t *testing.T) {
	g := AlexNet()
	sums := g.SummarizeByType()
	if len(sums) < 10 {
		t.Fatalf("only %d op types summarized", len(sums))
	}
	if !sort.SliceIsSorted(sums, func(i, j int) bool { return sums[i].Type < sums[j].Type }) {
		t.Fatal("summaries not sorted by type")
	}
	var total int
	for _, s := range sums {
		total += s.Invocations
		if s.Invocations <= 0 {
			t.Errorf("%s: zero invocations in summary", s.Type)
		}
	}
	if total != len(g.Ops) {
		t.Fatalf("summary invocations %d != ops %d", total, len(g.Ops))
	}
}

func TestDecomposableFlopsQuick(t *testing.T) {
	f := func(muls, adds, other uint32) bool {
		op := &Op{Type: OpConv2D, Muls: float64(muls), Adds: float64(adds), OtherFlops: float64(other)}
		d := op.DecomposableFlops()
		return d >= 0 && d <= op.TotalFlops()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvGeom(t *testing.T) {
	// SAME padding, stride 1: output == input.
	if oh, ow := convGeom(224, 224, 3, 3, 1, true); oh != 224 || ow != 224 {
		t.Errorf("SAME geom = %dx%d", oh, ow)
	}
	// VALID, stride 4, 11x11 on 227: AlexNet conv1 = 55x55.
	if oh, ow := convGeom(227, 227, 11, 11, 4, false); oh != 55 || ow != 55 {
		t.Errorf("AlexNet conv1 geom = %dx%d, want 55x55", oh, ow)
	}
	// SAME, stride 2 halves rounded up.
	if oh, _ := convGeom(7, 7, 3, 3, 2, true); oh != 4 {
		t.Errorf("SAME s2 geom = %d, want 4", oh)
	}
}

func TestModelsAreDeterministic(t *testing.T) {
	a := ResNet50()
	b := ResNet50()
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("non-deterministic op count: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i].Name != b.Ops[i].Name || a.Ops[i].Muls != b.Ops[i].Muls || a.Ops[i].Bytes != b.Ops[i].Bytes {
			t.Fatalf("op %d differs between builds", i)
		}
	}
}

func TestLSTMAndWord2VecAreMemoryLeaning(t *testing.T) {
	// The non-CNN co-run models must have far lower arithmetic
	// intensity than the CNNs (that is why they live on CPU/ProgPIM in
	// the mixed-workload study).
	models := buildAll(t)
	intensity := func(g *Graph) float64 {
		f, b := g.Totals()
		return f / b
	}
	vgg := intensity(models[VGG19Name])
	for _, name := range []ModelName{Word2VecName} {
		if ai := intensity(models[name]); ai > vgg/10 {
			t.Errorf("%s arithmetic intensity %g too close to VGG-19's %g", name, ai, vgg)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := AlexNet()
	var buf strings.Builder
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "conv1/Conv2D", "->", "step-1", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q", want)
		}
	}
	// Every op becomes a node.
	if got := strings.Count(out, "style=filled"); got != len(g.Ops) {
		t.Fatalf("%d nodes for %d ops", got, len(g.Ops))
	}
}
