package nn

import "fmt"

// LayerSpec describes one layer of a user-defined CNN for CNNSpec.
type LayerSpec struct {
	// Kind is "conv", "pool", "avgpool", "batchnorm", "fc".
	Kind string
	// Conv parameters (conv): filter FHxFW, OutC channels, Stride,
	// SamePad; Transposed marks fractionally-strided layers.
	FH, FW, OutC, Stride int
	SamePad              bool
	Transposed           bool
	// Pool parameters (pool/avgpool): Window and Stride.
	Window int
	// FC parameters: Out units.
	Out int
	// Activation: "relu", "tanh", "sigmoid" or "" (none).
	Activation string
}

// CNNSpec is a user-defined convolutional network: the library's
// extension point for simulating models beyond the paper's seven.
type CNNSpec struct {
	Name string
	// Batch size; InputH/W/C the input geometry; Classes the output.
	Batch, InputH, InputW, InputC, Classes int
	Layers                                 []LayerSpec
	// GPUUtilization defaults to 0.5 when zero (no published number
	// for a custom model).
	GPUUtilization float64
	// FrameworkOps is the "Other N ops" tail size (default 20).
	FrameworkOps int
}

// activation maps the spec string to an op type.
func activation(s string) (OpType, error) {
	switch s {
	case "relu":
		return OpRelu, nil
	case "tanh":
		return OpTanh, nil
	case "sigmoid":
		return OpSigmoid, nil
	case "":
		return "", nil
	default:
		return "", fmt.Errorf("nn: unknown activation %q", s)
	}
}

// BuildCNN lowers a CNNSpec into a training-step graph with the same
// cost model and backward/optimizer structure as the built-in models.
func BuildCNN(spec CNNSpec) (*Graph, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("nn: custom CNN needs a name")
	}
	if spec.Batch <= 0 || spec.InputH <= 0 || spec.InputW <= 0 || spec.InputC <= 0 {
		return nil, fmt.Errorf("nn: custom CNN %q: bad input geometry %dx%dx%d batch %d",
			spec.Name, spec.InputH, spec.InputW, spec.InputC, spec.Batch)
	}
	if spec.Classes <= 0 {
		return nil, fmt.Errorf("nn: custom CNN %q: needs a positive class count", spec.Name)
	}
	if len(spec.Layers) == 0 {
		return nil, fmt.Errorf("nn: custom CNN %q: no layers", spec.Name)
	}
	bd := newBuilder(spec.Name, spec.Batch)
	h, w, c := spec.InputH, spec.InputW, spec.InputC
	flattened := false
	flatDim := 0
	for i, l := range spec.Layers {
		name := fmt.Sprintf("layer%d_%s", i+1, l.Kind)
		act, err := activation(l.Activation)
		if err != nil {
			return nil, fmt.Errorf("nn: custom CNN %q layer %d: %w", spec.Name, i+1, err)
		}
		switch l.Kind {
		case "conv":
			if flattened {
				return nil, fmt.Errorf("nn: custom CNN %q layer %d: conv after fc", spec.Name, i+1)
			}
			if l.FH <= 0 || l.FW <= 0 || l.OutC <= 0 || l.Stride <= 0 {
				return nil, fmt.Errorf("nn: custom CNN %q layer %d: bad conv geometry", spec.Name, i+1)
			}
			if !l.SamePad && !l.Transposed && (l.FH > h || l.FW > w) {
				return nil, fmt.Errorf("nn: custom CNN %q layer %d: %dx%d filter exceeds %dx%d input", spec.Name, i+1, l.FH, l.FW, h, w)
			}
			bd.conv(name, h, w, c, l.FH, l.FW, l.OutC, l.Stride, l.SamePad, act, l.Transposed)
			if l.Transposed {
				h, w = h*l.Stride, w*l.Stride
			} else {
				h, w = convGeom(h, w, l.FH, l.FW, l.Stride, l.SamePad)
			}
			c = l.OutC
		case "pool", "avgpool":
			if flattened {
				return nil, fmt.Errorf("nn: custom CNN %q layer %d: pool after fc", spec.Name, i+1)
			}
			if l.Window <= 0 || l.Stride <= 0 || l.Window > h || l.Window > w {
				return nil, fmt.Errorf("nn: custom CNN %q layer %d: bad pool geometry (window %d on %dx%d)", spec.Name, i+1, l.Window, h, w)
			}
			kind := OpMaxPool
			if l.Kind == "avgpool" {
				kind = OpAvgPool
			}
			bd.pool(name, h, w, c, l.Window, l.Stride, kind)
			h = (h-l.Window)/l.Stride + 1
			w = (w-l.Window)/l.Stride + 1
		case "batchnorm":
			if flattened {
				return nil, fmt.Errorf("nn: custom CNN %q layer %d: batchnorm after fc", spec.Name, i+1)
			}
			bd.batchNorm(name, h, w, c)
		case "fc":
			if l.Out <= 0 {
				return nil, fmt.Errorf("nn: custom CNN %q layer %d: bad fc width", spec.Name, i+1)
			}
			in := flatDim
			if !flattened {
				in = h * w * c
				flattened = true
			}
			bd.fc(name, in, l.Out, act)
			flatDim = l.Out
		default:
			return nil, fmt.Errorf("nn: custom CNN %q layer %d: unknown kind %q", spec.Name, i+1, l.Kind)
		}
		if h <= 0 || w <= 0 {
			return nil, fmt.Errorf("nn: custom CNN %q layer %d: feature map collapsed to %dx%d", spec.Name, i+1, h, w)
		}
	}
	// Output projection if the last layer did not already emit it.
	if !flattened {
		bd.fc("classifier", h*w*c, spec.Classes, "")
	} else if flatDim != spec.Classes {
		bd.fc("classifier", flatDim, spec.Classes, "")
	}
	fops := spec.FrameworkOps
	if fops <= 0 {
		fops = 20
	}
	addFrameworkOps(bd, fops)
	grad := bd.loss(spec.Classes)
	bd.backward(grad)
	util := spec.GPUUtilization
	if util <= 0 {
		util = 0.5
	}
	bd.g.InputBytes = float64(spec.Batch*spec.InputH*spec.InputW*spec.InputC) * bytesPerElem
	bd.g.GPUUtilization = util
	bd.g.GPUUnhiddenTransferFrac = 0.1
	bd.g.GPUEffFactor = 1
	if err := bd.g.Validate(); err != nil {
		return nil, fmt.Errorf("nn: custom CNN %q: %w", spec.Name, err)
	}
	return bd.g, nil
}
