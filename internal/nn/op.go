// Package nn models NN training workloads the way the paper's profiling
// framework sees them: as dataflow graphs of operations, each with an
// analytic cost descriptor (multiplications, additions, other-ALU work,
// main-memory traffic, available fine-grained parallelism) derived from
// the network's layer shapes at the paper's batch sizes.
//
// The descriptors drive three things: the Table I profile (execution
// time and main-memory access shares on the CPU), the Fig. 2 four-class
// taxonomy, and the device roofline models in internal/device.
package nn

// OpType names a TensorFlow-style training operation.
type OpType string

// The operation vocabulary of the paper's profiles (Table I) plus the
// framework ops every step drags along.
const (
	OpConv2D               OpType = "Conv2D"
	OpConv2DBackpropFilter OpType = "Conv2DBackpropFilter"
	OpConv2DBackpropInput  OpType = "Conv2DBackpropInput"
	OpMatMul               OpType = "MatMul"
	OpBiasAdd              OpType = "BiasAdd"
	OpBiasAddGrad          OpType = "BiasAddGrad"
	OpRelu                 OpType = "Relu"
	OpReluGrad             OpType = "ReluGrad"
	OpMaxPool              OpType = "MaxPool"
	OpMaxPoolGrad          OpType = "MaxPoolGrad"
	OpApplyAdam            OpType = "ApplyAdam"
	OpSoftmax              OpType = "Softmax"
	OpCrossEntropy         OpType = "SoftmaxCrossEntropyWithLogits"
	OpMul                  OpType = "Mul"
	OpAdd                  OpType = "Add"
	OpSlice                OpType = "Slice"
	OpReshape              OpType = "Reshape"
	OpSum                  OpType = "Sum"
	OpMean                 OpType = "Mean"
	OpTranspose            OpType = "Transpose"
	OpPad                  OpType = "Pad"
	OpConcat               OpType = "ConcatV2"
	OpBatchNorm            OpType = "FusedBatchNorm"
	OpBatchNormGrad        OpType = "FusedBatchNormGrad"
	OpTanh                 OpType = "Tanh"
	OpSigmoid              OpType = "Sigmoid"
	OpLSTMCell             OpType = "LSTMBlockCell"
	OpLSTMCellGrad         OpType = "LSTMBlockCellGrad"
	OpEmbeddingLookup      OpType = "GatherV2"
	OpEmbeddingGrad        OpType = "ScatterSub"
	OpNCELoss              OpType = "NCELoss"
	OpDropout              OpType = "Dropout"
	OpAvgPool              OpType = "AvgPool"
	OpAvgPoolGrad          OpType = "AvgPoolGrad"
)

// Class is the Fig. 2 four-way operation taxonomy.
type Class int

const (
	// Class1 is compute intensive but not memory intensive: it does not
	// have to be offloaded to PIMs, but can be when units idle.
	Class1 Class = 1
	// Class2 is both compute and memory intensive: the offload target.
	Class2 Class = 2
	// Class3 is memory intensive only ("unusual", e.g. Slice).
	Class3 Class = 3
	// Class4 is neither and does not affect training performance.
	Class4 Class = 4
)

// Profile is the per-operation-type behaviour model. Compute
// efficiencies are the sustained fraction of a device's peak FLOPs the
// op achieves; bandwidth efficiencies likewise for memory-bound phases.
// They encode what the paper measured with VTune (e.g. TensorFlow's CPU
// Conv2DBackpropFilter runs far below GEMM efficiency because of its
// strided access pattern).
type Profile struct {
	Type OpType
	// FixedEligible means the op's decomposable portion can execute on
	// the fixed-function multiplier/adder PIMs.
	FixedEligible bool
	// ProgEligible means the op can execute on the programmable PIM
	// (conditionals, discretization, transcendentals are fine there).
	ProgEligible bool
	// DecomposableFrac is the fraction of the op's arithmetic that is
	// pure multiply/add (offloadable to fixed-function PIMs); the rest
	// is the Fig. 6 "computation phases" that need a programmable core.
	DecomposableFrac float64

	CPUComputeEff   float64
	CPUBwEff        float64
	GPUComputeEff   float64 // multiplied by the per-model §V-D utilization
	GPUBwEff        float64
	ProgComputeEff  float64
	ProgBwEff       float64
	FixedComputeEff float64
	FixedBwEff      float64
}

// profiles is the per-type behaviour table. The numbers are calibration
// constants chosen so the CPU model reproduces Table I's ranking
// structure and the cross-device factors land in the paper's headline
// bands (DESIGN.md §4-5); they are not vendor datasheet values.
var profiles = map[OpType]Profile{
	OpConv2D: {
		Type: OpConv2D, FixedEligible: true, ProgEligible: true, DecomposableFrac: 1.0,
		CPUComputeEff: 0.40, CPUBwEff: 0.45, GPUComputeEff: 0.055, GPUBwEff: 0.60,
		ProgComputeEff: 0.22, ProgBwEff: 0.70, FixedComputeEff: 0.95, FixedBwEff: 0.85,
	},
	OpConv2DBackpropFilter: {
		Type: OpConv2DBackpropFilter, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.999,
		CPUComputeEff: 0.10, CPUBwEff: 0.18, GPUComputeEff: 0.042, GPUBwEff: 0.55,
		ProgComputeEff: 0.15, ProgBwEff: 0.60, FixedComputeEff: 0.92, FixedBwEff: 0.85,
	},
	OpConv2DBackpropInput: {
		Type: OpConv2DBackpropInput, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.999,
		CPUComputeEff: 0.115, CPUBwEff: 0.22, GPUComputeEff: 0.045, GPUBwEff: 0.55,
		ProgComputeEff: 0.17, ProgBwEff: 0.60, FixedComputeEff: 0.93, FixedBwEff: 0.85,
	},
	OpMatMul: {
		Type: OpMatMul, FixedEligible: true, ProgEligible: true, DecomposableFrac: 1.0,
		CPUComputeEff: 0.22, CPUBwEff: 0.40, GPUComputeEff: 0.060, GPUBwEff: 0.60,
		ProgComputeEff: 0.25, ProgBwEff: 0.70, FixedComputeEff: 0.95, FixedBwEff: 0.85,
	},
	OpBiasAdd: {
		Type: OpBiasAdd, FixedEligible: true, ProgEligible: true, DecomposableFrac: 1,
		CPUComputeEff: 0.10, CPUBwEff: 0.50, GPUComputeEff: 0.02, GPUBwEff: 0.70,
		ProgComputeEff: 0.55, ProgBwEff: 0.80, FixedComputeEff: 0.90, FixedBwEff: 0.90,
	},
	OpBiasAddGrad: {
		// TensorFlow's strided column reduction: dreadful CPU bandwidth
		// efficiency, which is why it is #2 on VGG-19's MI list while
		// contributing little arithmetic.
		Type: OpBiasAddGrad, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.98,
		CPUComputeEff: 0.02, CPUBwEff: 0.055, GPUComputeEff: 0.015, GPUBwEff: 0.45,
		ProgComputeEff: 0.45, ProgBwEff: 0.75, FixedComputeEff: 0.85, FixedBwEff: 0.90,
	},
	OpRelu: {
		// Conditional: not decomposable to multiply/add, programmable
		// PIM territory (Section II-A).
		Type: OpRelu, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.06, CPUBwEff: 0.55, GPUComputeEff: 0.01, GPUBwEff: 0.75,
		ProgComputeEff: 0.60, ProgBwEff: 0.85, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpReluGrad: {
		Type: OpReluGrad, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.06, CPUBwEff: 0.50, GPUComputeEff: 0.01, GPUBwEff: 0.75,
		ProgComputeEff: 0.60, ProgBwEff: 0.85, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpMaxPool: {
		// Sample-based discretization: comparisons, not mul/add.
		Type: OpMaxPool, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.05, CPUBwEff: 0.45, GPUComputeEff: 0.01, GPUBwEff: 0.70,
		ProgComputeEff: 0.55, ProgBwEff: 0.80, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpMaxPoolGrad: {
		Type: OpMaxPoolGrad, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.04, CPUBwEff: 0.35, GPUComputeEff: 0.01, GPUBwEff: 0.65,
		ProgComputeEff: 0.50, ProgBwEff: 0.75, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpApplyAdam: {
		// sqrt + division: partially decomposable; the paper names it a
		// programmable-PIM op.
		Type: OpApplyAdam, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.60,
		CPUComputeEff: 0.08, CPUBwEff: 0.45, GPUComputeEff: 0.015, GPUBwEff: 0.70,
		ProgComputeEff: 0.55, ProgBwEff: 0.80, FixedComputeEff: 0.85, FixedBwEff: 0.90,
	},
	OpSoftmax: {
		Type: OpSoftmax, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.05, CPUBwEff: 0.40, GPUComputeEff: 0.01, GPUBwEff: 0.60,
		ProgComputeEff: 0.45, ProgBwEff: 0.75, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpCrossEntropy: {
		Type: OpCrossEntropy, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.05, CPUBwEff: 0.40, GPUComputeEff: 0.01, GPUBwEff: 0.60,
		ProgComputeEff: 0.45, ProgBwEff: 0.75, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpMul: {
		Type: OpMul, FixedEligible: true, ProgEligible: true, DecomposableFrac: 1,
		CPUComputeEff: 0.10, CPUBwEff: 0.50, GPUComputeEff: 0.02, GPUBwEff: 0.75,
		ProgComputeEff: 0.60, ProgBwEff: 0.85, FixedComputeEff: 0.90, FixedBwEff: 0.90,
	},
	OpAdd: {
		Type: OpAdd, FixedEligible: true, ProgEligible: true, DecomposableFrac: 1,
		CPUComputeEff: 0.10, CPUBwEff: 0.50, GPUComputeEff: 0.02, GPUBwEff: 0.75,
		ProgComputeEff: 0.60, ProgBwEff: 0.85, FixedComputeEff: 0.90, FixedBwEff: 0.90,
	},
	OpSlice: {
		// Pure data movement with limited parallelism: the paper's
		// example of a small op that benefits from the pipeline.
		Type: OpSlice, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.02, CPUBwEff: 0.30, GPUComputeEff: 0.005, GPUBwEff: 0.55,
		ProgComputeEff: 0.10, ProgBwEff: 0.80, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpReshape: {
		Type: OpReshape, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.02, CPUBwEff: 0.60, GPUComputeEff: 0.005, GPUBwEff: 0.80,
		ProgComputeEff: 0.10, ProgBwEff: 0.85, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpSum: {
		Type: OpSum, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.95,
		CPUComputeEff: 0.05, CPUBwEff: 0.25, GPUComputeEff: 0.01, GPUBwEff: 0.55,
		ProgComputeEff: 0.45, ProgBwEff: 0.75, FixedComputeEff: 0.85, FixedBwEff: 0.90,
	},
	OpMean: {
		Type: OpMean, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.90,
		CPUComputeEff: 0.05, CPUBwEff: 0.25, GPUComputeEff: 0.01, GPUBwEff: 0.55,
		ProgComputeEff: 0.45, ProgBwEff: 0.75, FixedComputeEff: 0.85, FixedBwEff: 0.90,
	},
	OpTranspose: {
		Type: OpTranspose, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.02, CPUBwEff: 0.25, GPUComputeEff: 0.005, GPUBwEff: 0.50,
		ProgComputeEff: 0.10, ProgBwEff: 0.70, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpPad: {
		Type: OpPad, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.02, CPUBwEff: 0.45, GPUComputeEff: 0.005, GPUBwEff: 0.70,
		ProgComputeEff: 0.10, ProgBwEff: 0.80, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpConcat: {
		Type: OpConcat, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.02, CPUBwEff: 0.45, GPUComputeEff: 0.005, GPUBwEff: 0.70,
		ProgComputeEff: 0.10, ProgBwEff: 0.80, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpBatchNorm: {
		Type: OpBatchNorm, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.95,
		CPUComputeEff: 0.06, CPUBwEff: 0.35, GPUComputeEff: 0.012, GPUBwEff: 0.60,
		ProgComputeEff: 0.50, ProgBwEff: 0.75, FixedComputeEff: 0.85, FixedBwEff: 0.88,
	},
	OpBatchNormGrad: {
		Type: OpBatchNormGrad, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.95,
		CPUComputeEff: 0.05, CPUBwEff: 0.30, GPUComputeEff: 0.012, GPUBwEff: 0.55,
		ProgComputeEff: 0.45, ProgBwEff: 0.72, FixedComputeEff: 0.85, FixedBwEff: 0.88,
	},
	OpTanh: {
		Type: OpTanh, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.04, CPUBwEff: 0.45, GPUComputeEff: 0.01, GPUBwEff: 0.70,
		ProgComputeEff: 0.45, ProgBwEff: 0.80, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpSigmoid: {
		Type: OpSigmoid, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.04, CPUBwEff: 0.45, GPUComputeEff: 0.01, GPUBwEff: 0.70,
		ProgComputeEff: 0.45, ProgBwEff: 0.80, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpLSTMCell: {
		Type: OpLSTMCell, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.85,
		CPUComputeEff: 0.20, CPUBwEff: 0.40, GPUComputeEff: 0.05, GPUBwEff: 0.60,
		ProgComputeEff: 0.25, ProgBwEff: 0.70, FixedComputeEff: 0.90, FixedBwEff: 0.85,
	},
	OpLSTMCellGrad: {
		Type: OpLSTMCellGrad, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.80,
		CPUComputeEff: 0.12, CPUBwEff: 0.30, GPUComputeEff: 0.045, GPUBwEff: 0.55,
		ProgComputeEff: 0.20, ProgBwEff: 0.65, FixedComputeEff: 0.88, FixedBwEff: 0.85,
	},
	OpEmbeddingLookup: {
		Type: OpEmbeddingLookup, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.02, CPUBwEff: 0.15, GPUComputeEff: 0.005, GPUBwEff: 0.35,
		ProgComputeEff: 0.10, ProgBwEff: 0.70, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpEmbeddingGrad: {
		Type: OpEmbeddingGrad, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.02, CPUBwEff: 0.12, GPUComputeEff: 0.005, GPUBwEff: 0.30,
		ProgComputeEff: 0.10, ProgBwEff: 0.65, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpNCELoss: {
		Type: OpNCELoss, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.80,
		CPUComputeEff: 0.15, CPUBwEff: 0.35, GPUComputeEff: 0.04, GPUBwEff: 0.55,
		ProgComputeEff: 0.25, ProgBwEff: 0.70, FixedComputeEff: 0.90, FixedBwEff: 0.85,
	},
	OpDropout: {
		Type: OpDropout, FixedEligible: false, ProgEligible: true, DecomposableFrac: 0,
		CPUComputeEff: 0.05, CPUBwEff: 0.45, GPUComputeEff: 0.01, GPUBwEff: 0.70,
		ProgComputeEff: 0.20, ProgBwEff: 0.80, FixedComputeEff: 0, FixedBwEff: 0,
	},
	OpAvgPool: {
		Type: OpAvgPool, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.90,
		CPUComputeEff: 0.05, CPUBwEff: 0.45, GPUComputeEff: 0.01, GPUBwEff: 0.70,
		ProgComputeEff: 0.55, ProgBwEff: 0.80, FixedComputeEff: 0.85, FixedBwEff: 0.88,
	},
	OpAvgPoolGrad: {
		Type: OpAvgPoolGrad, FixedEligible: true, ProgEligible: true, DecomposableFrac: 0.90,
		CPUComputeEff: 0.04, CPUBwEff: 0.35, GPUComputeEff: 0.01, GPUBwEff: 0.65,
		ProgComputeEff: 0.50, ProgBwEff: 0.75, FixedComputeEff: 0.85, FixedBwEff: 0.88,
	},
}

// ProgParallelismFor bounds how many programmable-PIM processors one
// operation of the given type can productively use (the Amdahl limit of
// its intra-op parallelism on coarse-grained cores). The Progr PIM
// baseline executes "operations on as many ARM-based programmable cores
// as needed by workloads" — needed, not available.
func ProgParallelismFor(t OpType) int {
	switch t {
	case OpConv2D, OpConv2DBackpropFilter, OpConv2DBackpropInput, OpMatMul,
		OpLSTMCell, OpLSTMCellGrad, OpNCELoss:
		return 16
	case OpRelu, OpReluGrad, OpMul, OpAdd, OpBiasAdd, OpApplyAdam, OpDropout,
		OpBatchNorm, OpBatchNormGrad, OpTanh, OpSigmoid:
		return 8
	case OpMaxPool, OpMaxPoolGrad, OpAvgPool, OpAvgPoolGrad, OpBiasAddGrad,
		OpSum, OpMean, OpSoftmax, OpCrossEntropy:
		return 4
	default:
		// Slice, Reshape, Transpose, Pad, Concat, embedding ops: tiny or
		// latency-bound.
		return 1
	}
}

// ProfileFor returns the behaviour profile of an op type. Unknown types
// fall back to a conservative programmable-only profile so experimental
// graphs never crash the simulator.
func ProfileFor(t OpType) Profile {
	if p, ok := profiles[t]; ok {
		return p
	}
	return Profile{
		Type: t, ProgEligible: true,
		CPUComputeEff: 0.05, CPUBwEff: 0.30, GPUComputeEff: 0.01, GPUBwEff: 0.50,
		ProgComputeEff: 0.15, ProgBwEff: 0.70,
	}
}

// KnownOpTypes returns the catalogued op types (for tests and tools).
func KnownOpTypes() []OpType {
	out := make([]OpType, 0, len(profiles))
	for t := range profiles {
		out = append(out, t)
	}
	return out
}
