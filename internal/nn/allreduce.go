package nn

import (
	"fmt"
	"sync"
)

// Gradient all-reduce schedules for data-parallel multi-stack training.
//
// When a training step is sharded across M stacks, every stack holds a
// full gradient of P = Graph.ParamBytes after its backward pass and the
// stacks must agree on the sum before the weight update. The two
// classic schedules are expressed here as task-graph templates — an
// ordered list of phases, each a set of simultaneous point-to-point
// transfers — so the simulator core can instantiate them as events on
// an engine without knowing the algorithms.
//
//   - ring: 2(M-1) phases of P/M-byte chunks around a ring
//     (reduce-scatter then all-gather). Bandwidth-optimal: each stack
//     sends 2P(M-1)/M bytes total, but pays 2(M-1) link latencies.
//   - tree: a binomial reduction to stack 0 followed by the mirrored
//     broadcast, 2*ceil(log2 M) phases of full-P messages.
//     Latency-optimal for small gradients, bandwidth-suboptimal for
//     large ones.
//
// Both schedules move 2(M-1)*P bytes across the links in total.

// AllReduceKind names a gradient all-reduce schedule.
type AllReduceKind string

const (
	// AllReduceRing is the bandwidth-optimal ring schedule
	// (reduce-scatter + all-gather).
	AllReduceRing AllReduceKind = "ring"
	// AllReduceTree is the latency-optimal binomial-tree schedule
	// (reduce to root + broadcast).
	AllReduceTree AllReduceKind = "tree"
)

// ParseAllReduceKind maps a user-facing string to a schedule kind.
func ParseAllReduceKind(s string) (AllReduceKind, error) {
	switch AllReduceKind(s) {
	case AllReduceRing, AllReduceTree:
		return AllReduceKind(s), nil
	case "":
		return AllReduceRing, nil
	}
	return "", fmt.Errorf("nn: unknown all-reduce schedule %q (want ring or tree)", s)
}

// AllReducePhase is one synchronous step of the schedule: every listed
// transfer proceeds in parallel, and the next phase starts only when
// all of them have finished. Frac is the fraction of the gradient each
// transfer carries.
type AllReducePhase struct {
	Frac      float64
	Transfers [][2]int // {src, dst} stack indexes
}

// AllReduceTemplate returns the phase list for kind over stacks peers.
// Templates are memoized: repeated calls for the same (kind, stacks)
// return the same shared slice, so callers must not mutate it.
func AllReduceTemplate(kind AllReduceKind, stacks int) ([]AllReducePhase, error) {
	if stacks < 2 {
		return nil, fmt.Errorf("nn: all-reduce needs at least 2 stacks, got %d", stacks)
	}
	switch kind {
	case AllReduceRing, AllReduceTree:
	default:
		return nil, fmt.Errorf("nn: unknown all-reduce schedule %q", kind)
	}
	key := allReduceKey{kind: kind, stacks: stacks}
	if v, ok := allReduceTemplates.Load(key); ok {
		return v.([]AllReducePhase), nil
	}
	var phases []AllReducePhase
	switch kind {
	case AllReduceRing:
		phases = ringPhases(stacks)
	case AllReduceTree:
		phases = treePhases(stacks)
	}
	v, _ := allReduceTemplates.LoadOrStore(key, phases)
	return v.([]AllReducePhase), nil
}

type allReduceKey struct {
	kind   AllReduceKind
	stacks int
}

var allReduceTemplates sync.Map // allReduceKey -> []AllReducePhase

// ringPhases builds the reduce-scatter + all-gather ring: 2(M-1)
// phases, each with every stack passing a P/M chunk to its successor.
func ringPhases(m int) []AllReducePhase {
	phases := make([]AllReducePhase, 0, 2*(m-1))
	for p := 0; p < 2*(m-1); p++ {
		tr := make([][2]int, m)
		for i := 0; i < m; i++ {
			tr[i] = [2]int{i, (i + 1) % m}
		}
		phases = append(phases, AllReducePhase{Frac: 1.0 / float64(m), Transfers: tr})
	}
	return phases
}

// treePhases builds the binomial reduce-to-root then broadcast:
// ceil(log2 M) rounds each way, full-gradient messages. Works for any
// M, not just powers of two (skewed pairs just sit out a round).
func treePhases(m int) []AllReducePhase {
	var reduce []AllReducePhase
	for step := 1; step < m; step *= 2 {
		var tr [][2]int
		for i := 0; i+step < m; i += 2 * step {
			tr = append(tr, [2]int{i + step, i})
		}
		reduce = append(reduce, AllReducePhase{Frac: 1, Transfers: tr})
	}
	phases := make([]AllReducePhase, 0, 2*len(reduce))
	phases = append(phases, reduce...)
	// Broadcast mirrors the reduction in reverse order with the
	// transfer directions flipped.
	for p := len(reduce) - 1; p >= 0; p-- {
		tr := make([][2]int, len(reduce[p].Transfers))
		for i, t := range reduce[p].Transfers {
			tr[i] = [2]int{t[1], t[0]}
		}
		phases = append(phases, AllReducePhase{Frac: 1, Transfers: tr})
	}
	return phases
}

// ShardBatches splits a global minibatch across stacks for data-parallel
// training: stack i trains batch/stacks samples, with the remainder
// spread over the lowest stack indexes so shard 0 is always a largest
// shard (the property the DSE lower bound relies on).
func ShardBatches(batch, stacks int) ([]int, error) {
	if stacks < 1 {
		return nil, fmt.Errorf("nn: stack count must be >= 1, got %d", stacks)
	}
	if batch < stacks {
		return nil, fmt.Errorf("nn: cannot shard batch %d across %d stacks (need batch >= stacks)", batch, stacks)
	}
	out := make([]int, stacks)
	for i := range out {
		out[i] = batch / stacks
		if i < batch%stacks {
			out[i]++
		}
	}
	return out, nil
}
