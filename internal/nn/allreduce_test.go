package nn

import (
	"math"
	"testing"
)

func TestParseAllReduceKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want AllReduceKind
		ok   bool
	}{
		{"", AllReduceRing, true},
		{"ring", AllReduceRing, true},
		{"tree", AllReduceTree, true},
		{"butterfly", "", false},
	} {
		got, err := ParseAllReduceKind(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseAllReduceKind(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseAllReduceKind(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRingTemplateShape(t *testing.T) {
	for _, m := range []int{2, 3, 4, 8} {
		phases, err := AllReduceTemplate(AllReduceRing, m)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(phases), 2*(m-1); got != want {
			t.Fatalf("ring m=%d: %d phases, want %d", m, got, want)
		}
		for pi, p := range phases {
			if p.Frac != 1/float64(m) {
				t.Errorf("ring m=%d phase %d: frac %g, want %g", m, pi, p.Frac, 1/float64(m))
			}
			if len(p.Transfers) != m {
				t.Errorf("ring m=%d phase %d: %d transfers, want %d", m, pi, len(p.Transfers), m)
			}
			for _, tr := range p.Transfers {
				if tr[1] != (tr[0]+1)%m {
					t.Errorf("ring m=%d phase %d: transfer %v is not to the next stack", m, pi, tr)
				}
			}
		}
	}
}

func TestTreeTemplateShape(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 8} {
		phases, err := AllReduceTemplate(AllReduceTree, m)
		if err != nil {
			t.Fatal(err)
		}
		rounds := int(math.Ceil(math.Log2(float64(m))))
		if got, want := len(phases), 2*rounds; got != want {
			t.Fatalf("tree m=%d: %d phases, want %d", m, got, want)
		}
		// The broadcast half mirrors the reduction half with flipped
		// transfer direction.
		for i := 0; i < rounds; i++ {
			red, bc := phases[i], phases[len(phases)-1-i]
			if len(red.Transfers) != len(bc.Transfers) {
				t.Fatalf("tree m=%d: phase %d has %d transfers but its mirror has %d",
					m, i, len(red.Transfers), len(bc.Transfers))
			}
			for j, tr := range red.Transfers {
				if mir := bc.Transfers[j]; mir[0] != tr[1] || mir[1] != tr[0] {
					t.Errorf("tree m=%d: transfer %v not mirrored by %v", m, tr, mir)
				}
			}
		}
		// Every non-root stack receives the reduced gradient exactly once.
		got := map[int]int{}
		for i := rounds; i < len(phases); i++ {
			for _, tr := range phases[i].Transfers {
				got[tr[1]]++
			}
		}
		for s := 1; s < m; s++ {
			if got[s] != 1 {
				t.Errorf("tree m=%d: stack %d receives the broadcast %d times, want 1", m, s, got[s])
			}
		}
	}
}

// Both schedules move exactly 2(M-1)*P bytes over the links in total.
func TestTemplatesMoveSameTotalBytes(t *testing.T) {
	const paramBytes = 1e8
	for _, kind := range []AllReduceKind{AllReduceRing, AllReduceTree} {
		for _, m := range []int{2, 3, 4, 6, 8} {
			phases, err := AllReduceTemplate(kind, m)
			if err != nil {
				t.Fatal(err)
			}
			var bytes float64
			for _, p := range phases {
				bytes += p.Frac * paramBytes * float64(len(p.Transfers))
			}
			want := 2 * float64(m-1) * paramBytes
			if math.Abs(bytes-want) > 1e-6*want {
				t.Errorf("%s m=%d: %g bytes moved, want %g", kind, m, bytes, want)
			}
		}
	}
}

func TestTemplateMemoized(t *testing.T) {
	a, err := AllReduceTemplate(AllReduceRing, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AllReduceTemplate(AllReduceRing, 4)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("repeated AllReduceTemplate calls rebuilt the template instead of memoizing")
	}
	if _, err := AllReduceTemplate(AllReduceRing, 1); err == nil {
		t.Error("AllReduceTemplate accepted a single stack")
	}
	if _, err := AllReduceTemplate("butterfly", 4); err == nil {
		t.Error("AllReduceTemplate accepted an unknown kind")
	}
}

func TestShardBatches(t *testing.T) {
	got, err := ShardBatches(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ShardBatches(10, 4) = %v, want %v", got, want)
		}
	}
	sum := 0
	for _, b := range got {
		sum += b
	}
	if sum != 10 {
		t.Fatalf("shards sum to %d, want 10", sum)
	}
	if _, err := ShardBatches(3, 4); err == nil {
		t.Error("ShardBatches accepted a batch smaller than the stack count")
	}
}
