package nn

import "fmt"

// ModelName enumerates the paper's training workloads (Section V-C).
type ModelName string

// The seven evaluated models.
const (
	VGG19Name       ModelName = "VGG-19"
	AlexNetName     ModelName = "AlexNet"
	DCGANName       ModelName = "DCGAN"
	ResNet50Name    ModelName = "ResNet-50"
	InceptionV3Name ModelName = "Inception-v3"
	LSTMName        ModelName = "LSTM"
	Word2VecName    ModelName = "Word2vec"
)

// CNNModelNames lists the five CNN training workloads of Figs. 8-15 in
// figure order.
func CNNModelNames() []ModelName {
	return []ModelName{VGG19Name, AlexNetName, DCGANName, ResNet50Name, InceptionV3Name}
}

// AllModelNames adds the two non-CNN models used in the mixed-workload
// study (Section VI-F).
func AllModelNames() []ModelName {
	return append(CNNModelNames(), LSTMName, Word2VecName)
}

// DefaultBatch returns the paper's batch size for a model
// (Section V-C: VGG-19/AlexNet/Inception-v3 32, Word2vec/ResNet-50 128,
// DCGAN 64, LSTM 20).
func DefaultBatch(name ModelName) int {
	switch name {
	case DCGANName:
		return 64
	case ResNet50Name, Word2VecName:
		return 128
	case LSTMName:
		return 20
	default:
		return 32
	}
}

// Build constructs the one-step training graph for a model at the
// paper's batch size.
func Build(name ModelName) (*Graph, error) {
	return BuildWithBatch(name, 0)
}

// BuildWithBatch builds a model at an explicit batch size (0 = the
// paper's default) — the batch-size sensitivity extension study.
func BuildWithBatch(name ModelName, batch int) (*Graph, error) {
	if batch <= 0 {
		batch = DefaultBatch(name)
	}
	switch name {
	case VGG19Name:
		return buildVGG19(batch), nil
	case AlexNetName:
		return buildAlexNet(batch), nil
	case DCGANName:
		return buildDCGAN(batch), nil
	case ResNet50Name:
		return buildResNet50(batch), nil
	case InceptionV3Name:
		return buildInceptionV3(batch), nil
	case LSTMName:
		if batch != DefaultBatch(LSTMName) {
			return nil, fmt.Errorf("nn: LSTM is fixed at batch %d", DefaultBatch(LSTMName))
		}
		return LSTM(), nil
	case Word2VecName:
		if batch != DefaultBatch(Word2VecName) {
			return nil, fmt.Errorf("nn: Word2vec is fixed at batch %d", DefaultBatch(Word2VecName))
		}
		return Word2Vec(), nil
	default:
		return nil, fmt.Errorf("nn: unknown model %q", name)
	}
}

// VGG19 builds one training step of VGG-19 on ImageNet (batch 32):
// 16 convolutions in 5 blocks, 5 max-pools, 3 fully-connected layers.
func VGG19() *Graph { return buildVGG19(32) }

func buildVGG19(batch int) *Graph {
	bd := newBuilder(string(VGG19Name), batch)
	h, w := 224, 224
	c := 3
	blocks := []struct {
		convs, channels int
	}{{2, 64}, {2, 128}, {4, 256}, {4, 512}, {4, 512}}
	for bi, blk := range blocks {
		for ci := 0; ci < blk.convs; ci++ {
			bd.conv(fmt.Sprintf("conv%d_%d", bi+1, ci+1), h, w, c, 3, 3, blk.channels, 1, true, OpRelu, false)
			c = blk.channels
		}
		bd.pool(fmt.Sprintf("pool%d", bi+1), h, w, c, 2, 2, OpMaxPool)
		h, w = h/2, w/2
	}
	bd.fc("fc6", h*w*c, 4096, OpRelu)
	bd.fc("fc7", 4096, 4096, OpRelu)
	bd.fc("fc8", 4096, 1000, "")
	addFrameworkOps(bd, 20)
	grad := bd.loss(1000)
	bd.backward(grad)
	finishGraph(bd, float64(batch)*224*224*3*bytesPerElem, 0.63, 0.08)
	return bd.g
}

// AlexNet builds one training step of AlexNet on ImageNet (batch 32).
func AlexNet() *Graph { return buildAlexNet(32) }

func buildAlexNet(batch int) *Graph {
	bd := newBuilder(string(AlexNetName), batch)
	bd.conv("conv1", 227, 227, 3, 11, 11, 96, 4, false, OpRelu, false)
	bd.pool("pool1", 55, 55, 96, 3, 2, OpMaxPool)
	bd.conv("conv2", 27, 27, 96, 5, 5, 256, 1, true, OpRelu, false)
	bd.pool("pool2", 27, 27, 256, 3, 2, OpMaxPool)
	bd.conv("conv3", 13, 13, 256, 3, 3, 384, 1, true, OpRelu, false)
	bd.conv("conv4", 13, 13, 384, 3, 3, 384, 1, true, OpRelu, false)
	bd.conv("conv5", 13, 13, 384, 3, 3, 256, 1, true, OpRelu, false)
	bd.pool("pool5", 13, 13, 256, 3, 2, OpMaxPool)
	bd.fc("fc6", 6*6*256, 4096, OpRelu)
	bd.fc("fc7", 4096, 4096, OpRelu)
	bd.fc("fc8", 4096, 1000, "")
	addFrameworkOps(bd, 16)
	grad := bd.loss(1000)
	bd.backward(grad)
	finishGraph(bd, float64(batch)*227*227*3*bytesPerElem, 0.30, 0.08)
	return bd.g
}

// DCGAN builds one training step of DCGAN on MNIST (batch 64): a
// generator of fractionally-strided convolutions and a convolutional
// discriminator, trained jointly. Its profile is dominated by many small
// operations (Table I lists 52 distinct types and 905 invocations),
// which is why the paper uses it to stress the operation pipeline.
func DCGAN() *Graph { return buildDCGAN(64) }

func buildDCGAN(batch int) *Graph {
	bd := newBuilder(string(DCGANName), batch)
	// Generator: z(100) -> 7x7x128 -> 14x14x64 -> 28x28x1.
	bd.fc("gen/project", 100, 7*7*128, OpRelu)
	bd.batchNorm("gen/bn0", 7, 7, 128)
	bd.conv("gen/deconv1", 7, 7, 128, 5, 5, 64, 2, true, OpRelu, true)
	bd.batchNorm("gen/bn1", 14, 14, 64)
	bd.conv("gen/deconv2", 14, 14, 64, 5, 5, 1, 2, true, OpTanh, true)
	// Discriminator on the generated (and implicitly real) images.
	bd.conv("disc/conv1", 28, 28, 1, 5, 5, 64, 2, true, OpRelu, false)
	bd.conv("disc/conv2", 14, 14, 64, 5, 5, 128, 2, true, OpRelu, false)
	bd.fc("disc/fc", 7*7*128, 1, "")
	// The GAN training loop slices real/fake minibatches and applies
	// many small elementwise ops (84 Mul and 14 Slice invocations in
	// Table I).
	imgBytes := float64(batch*28*28) * bytesPerElem
	for i := 0; i < 14; i++ {
		bd.g.AddOp(Op{
			Name:        fmt.Sprintf("batch/Slice_%d", i),
			Type:        OpSlice,
			Bytes:       trafficSlice * 2 * imgBytes,
			UnitGranule: 1,
		})
	}
	for i := 0; i < 84; i++ {
		elems := float64(batch * 7 * 7 * 128)
		bd.g.AddOp(Op{
			Name:        fmt.Sprintf("gan/Mul_%d", i),
			Type:        OpMul,
			Muls:        elems,
			Bytes:       trafficElementwise * 2 * elems * bytesPerElem,
			UnitGranule: 1,
			Inputs:      bd.dep(),
		})
	}
	addFrameworkOps(bd, 40)
	grad := bd.loss(1)
	bd.backward(grad)
	finishGraph(bd, float64(batch)*28*28*bytesPerElem, 0.28, 0.03)
	return bd.g
}

// resnetBottleneck emits one ResNet-50 bottleneck block (1x1, 3x3, 1x1
// convolutions, each followed by batch norm, plus the residual Add that
// merges the block input back in) at the given geometry.
func resnetBottleneck(bd *builder, name string, h, w, inC, midC, outC, stride int) (int, int) {
	skipFrom := bd.lastFwd
	bd.conv(name+"/conv1x1a", h, w, inC, 1, 1, midC, 1, true, OpRelu, false)
	bd.batchNorm(name+"/bn1", h, w, midC)
	bd.conv(name+"/conv3x3", h, w, midC, 3, 3, midC, stride, true, OpRelu, false)
	h, w = convGeom(h, w, 3, 3, stride, true)
	bd.batchNorm(name+"/bn2", h, w, midC)
	bd.conv(name+"/conv1x1b", h, w, midC, 1, 1, outC, 1, true, OpRelu, false)
	bd.batchNorm(name+"/bn3", h, w, outC)
	// Residual shortcut: elementwise Add of the block input (identity
	// or 1x1-projected) with the block output.
	elems := fmElems(bd.b, h, w, outC)
	inputs := []int{bd.lastFwd}
	if skipFrom >= 0 {
		inputs = append(inputs, skipFrom)
	}
	add := bd.g.AddOp(Op{
		Name: name + "/" + string(OpAdd) + "_residual", Type: OpAdd,
		Adds:        elems,
		Bytes:       trafficElementwise * 3 * elems * bytesPerElem,
		UnitGranule: 1,
		Inputs:      inputs,
	})
	bd.lastFwd = add.ID
	return h, w
}

// ResNet50 builds one training step of ResNet-50 on ImageNet
// (batch 128) — the paper's largest working set, which is where
// Hetero PIM overtakes the GPU (Section VI-A).
func ResNet50() *Graph { return buildResNet50(128) }

func buildResNet50(batch int) *Graph {
	bd := newBuilder(string(ResNet50Name), batch)
	bd.conv("conv1", 224, 224, 3, 7, 7, 64, 2, true, OpRelu, false)
	bd.batchNorm("bn1", 112, 112, 64)
	bd.pool("pool1", 112, 112, 64, 3, 2, OpMaxPool)
	h, w := 55, 55
	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	inC := 64
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			stride := 1
			if b == 0 {
				stride = st.stride
			}
			h, w = resnetBottleneck(bd, fmt.Sprintf("stage%d/block%d", si+2, b), h, w, inC, st.mid, st.out, stride)
			inC = st.out
		}
	}
	bd.pool("avgpool", h, w, inC, h, 1, OpAvgPool)
	bd.fc("fc1000", inC, 1000, "")
	addFrameworkOps(bd, 60)
	grad := bd.loss(1000)
	bd.backward(grad)
	finishGraph(bd, float64(batch)*224*224*3*bytesPerElem, 0.44, 0.30)
	return bd.g
}

// inceptionModule emits a simplified Inception-v3 module: four parallel
// branches (1x1 / 1x1+3x3 / 1x1+3x3+3x3 / pool+1x1) concatenated.
func inceptionModule(bd *builder, name string, h, w, inC, b1, b3, b5, pp int) int {
	head := bd.lastFwd
	outC := b1 + b3 + b5 + pp
	branch := func(sub string, emit func()) {
		bd.lastFwd = head
		emit()
	}
	branch("b1", func() { bd.conv(name+"/b1/1x1", h, w, inC, 1, 1, b1, 1, true, OpRelu, false) })
	tail1 := bd.lastFwd
	branch("b3", func() {
		bd.conv(name+"/b3/1x1", h, w, inC, 1, 1, b3/2, 1, true, OpRelu, false)
		bd.conv(name+"/b3/3x3", h, w, b3/2, 3, 3, b3, 1, true, OpRelu, false)
	})
	tail2 := bd.lastFwd
	branch("b5", func() {
		bd.conv(name+"/b5/1x1", h, w, inC, 1, 1, b5/2, 1, true, OpRelu, false)
		bd.conv(name+"/b5/3x3a", h, w, b5/2, 3, 3, b5, 1, true, OpRelu, false)
		bd.conv(name+"/b5/3x3b", h, w, b5, 3, 3, b5, 1, true, OpRelu, false)
	})
	tail3 := bd.lastFwd
	branch("pp", func() { bd.conv(name+"/pool_proj/1x1", h, w, inC, 1, 1, pp, 1, true, OpRelu, false) })
	tail4 := bd.lastFwd
	concatBytes := fmElems(bd.b, h, w, outC) * bytesPerElem
	cc := bd.g.AddOp(Op{
		Name:        name + "/" + string(OpConcat),
		Type:        OpConcat,
		Bytes:       trafficElementwise * 2 * concatBytes,
		UnitGranule: 1,
		Inputs:      []int{tail1, tail2, tail3, tail4},
	})
	bd.lastFwd = cc.ID
	return outC
}

// InceptionV3 builds one training step of a (structurally simplified)
// Inception-v3 on ImageNet (batch 32): a convolutional stem followed by
// eleven inception modules at three spatial scales.
func InceptionV3() *Graph { return buildInceptionV3(32) }

func buildInceptionV3(batch int) *Graph {
	bd := newBuilder(string(InceptionV3Name), batch)
	bd.conv("stem/conv1", 299, 299, 3, 3, 3, 32, 2, false, OpRelu, false)
	bd.conv("stem/conv2", 149, 149, 32, 3, 3, 32, 1, false, OpRelu, false)
	bd.conv("stem/conv3", 147, 147, 32, 3, 3, 64, 1, true, OpRelu, false)
	bd.pool("stem/pool1", 147, 147, 64, 3, 2, OpMaxPool)
	bd.conv("stem/conv4", 73, 73, 64, 1, 1, 80, 1, true, OpRelu, false)
	bd.conv("stem/conv5", 73, 73, 80, 3, 3, 192, 1, false, OpRelu, false)
	bd.pool("stem/pool2", 71, 71, 192, 3, 2, OpMaxPool)
	h, w, c := 35, 35, 192
	for i := 0; i < 3; i++ {
		c = inceptionModule(bd, fmt.Sprintf("mixed35_%d", i), h, w, c, 64, 96, 64, 32)
	}
	bd.pool("reduce17", h, w, c, 3, 2, OpMaxPool)
	h, w = 17, 17
	for i := 0; i < 5; i++ {
		c = inceptionModule(bd, fmt.Sprintf("mixed17_%d", i), h, w, c, 192, 192, 128, 96)
	}
	bd.pool("reduce8", h, w, c, 3, 2, OpMaxPool)
	h, w = 8, 8
	for i := 0; i < 3; i++ {
		c = inceptionModule(bd, fmt.Sprintf("mixed8_%d", i), h, w, c, 320, 384, 224, 128)
	}
	bd.pool("avgpool", h, w, c, h, 1, OpAvgPool)
	bd.fc("fc1000", c, 1000, "")
	addFrameworkOps(bd, 50)
	grad := bd.loss(1000)
	bd.backward(grad)
	finishGraph(bd, float64(batch)*299*299*3*bytesPerElem, 0.62, 0.10)
	return bd.g
}

// LSTM builds one training step of the PTB LSTM language model with
// dropout (batch 20, 2 layers, 650 hidden units, 35 unrolled steps).
func LSTM() *Graph {
	const (
		batch    = 20
		hidden   = 650
		vocab    = 10000
		steps    = 35
		layers   = 2
		embBytes = float64(vocab*hidden) * bytesPerElem
	)
	bd := newBuilder(string(LSTMName), batch)
	lookup := bd.g.AddOp(Op{
		Name:        "embedding/" + string(OpEmbeddingLookup),
		Type:        OpEmbeddingLookup,
		Bytes:       float64(batch*steps*hidden)*bytesPerElem + 0.02*embBytes,
		UnitGranule: 1,
	})
	bd.lastFwd = lookup.ID
	cellMacs := float64(batch) * 4 * float64(hidden) * float64(2*hidden)
	cellIO := float64(batch*hidden) * bytesPerElem
	wBytes := 4 * float64(2*hidden*hidden) * bytesPerElem
	var fwdCells []int
	for l := 0; l < layers; l++ {
		for t := 0; t < steps; t++ {
			cell := bd.g.AddOp(Op{
				Name: fmt.Sprintf("lstm%d/t%02d/%s", l, t, OpLSTMCell), Type: OpLSTMCell,
				Muls: cellMacs, Adds: cellMacs,
				OtherFlops:  float64(batch * hidden * 10),
				Bytes:       trafficMatMul*(wBytes) + 6*cellIO,
				UnitGranule: 127,
				Inputs:      bd.dep(),
			})
			bd.lastFwd = cell.ID
			fwdCells = append(fwdCells, cell.ID)
			drop := bd.g.AddOp(Op{
				Name:        fmt.Sprintf("lstm%d/t%02d/%s", l, t, OpDropout),
				Type:        OpDropout,
				OtherFlops:  float64(batch * hidden),
				Bytes:       trafficElementwise * 2 * cellIO,
				UnitGranule: 1,
				Inputs:      []int{cell.ID},
			})
			bd.lastFwd = drop.ID
		}
	}
	bd.fc("softmax_proj", hidden, vocab, "")
	addFrameworkOps(bd, 30)
	grad := bd.loss(vocab)
	// Projection-layer backward (MatMul grads + Adam).
	bd.backward(grad)
	// Backward through the cells in reverse.
	cur := grad
	for i := len(fwdCells) - 1; i >= 0; i-- {
		g := bd.g.AddOp(Op{
			Name: bd.g.Ops[fwdCells[i]].Name + "Grad", Type: OpLSTMCellGrad,
			Muls: 2 * cellMacs, Adds: 2 * cellMacs,
			OtherFlops:  float64(batch * hidden * 12),
			Bytes:       trafficMatMul*2*wBytes + 8*cellIO,
			UnitGranule: 127,
			Inputs:      []int{cur, fwdCells[i]},
		})
		cur = g.ID
	}
	// One fused weight update per layer.
	for l := 0; l < layers; l++ {
		bd.adam(fmt.Sprintf("lstm%d/weights", l), 4*float64(2*hidden*hidden), cur, fwdCells[l*steps])
	}
	bd.adam("embedding/weights", float64(vocab*hidden)*0.02, cur, lookup.ID)
	finishGraph(bd, float64(batch*steps)*bytesPerElem, 0.25, 0.05)
	return bd.g
}

// Word2Vec builds one training step of skip-gram Word2vec with NCE loss
// on the questions-words dataset (batch 128): almost no arithmetic, lots
// of irregular memory traffic — the canonical non-CNN co-run workload.
func Word2Vec() *Graph {
	const (
		batch  = 128
		dim    = 200
		vocab  = 50000
		negSam = 64
	)
	bd := newBuilder(string(Word2VecName), batch)
	embBytes := float64(vocab*dim) * bytesPerElem
	lookup := bd.g.AddOp(Op{
		Name:        "emb_in/" + string(OpEmbeddingLookup),
		Type:        OpEmbeddingLookup,
		Bytes:       float64(batch*dim)*bytesPerElem*8 + 0.01*embBytes,
		UnitGranule: 1,
	})
	bd.lastFwd = lookup.ID
	nceMacs := float64(batch) * float64(negSam+1) * float64(dim)
	nce := bd.g.AddOp(Op{
		Name: "nce/" + string(OpNCELoss), Type: OpNCELoss,
		Muls: nceMacs, Adds: nceMacs, OtherFlops: float64(batch * (negSam + 1) * 4),
		Bytes:       float64(batch*(negSam+1)*dim) * bytesPerElem * 2,
		UnitGranule: 127,
		Inputs:      []int{lookup.ID},
	})
	bd.lastFwd = nce.ID
	grads := bd.g.AddOp(Op{
		Name: "nce_grad/" + string(OpNCELoss), Type: OpNCELoss,
		Muls: 2 * nceMacs, Adds: 2 * nceMacs,
		Bytes:       float64(batch*(negSam+1)*dim) * bytesPerElem * 3,
		UnitGranule: 127,
		Inputs:      []int{nce.ID},
	})
	scatter := bd.g.AddOp(Op{
		Name:        "emb_in/" + string(OpEmbeddingGrad),
		Type:        OpEmbeddingGrad,
		Bytes:       float64(batch*dim)*bytesPerElem*12 + 0.01*embBytes,
		UnitGranule: 1,
		Inputs:      []int{grads.ID},
	})
	bd.adam("emb_in/weights", float64(batch*dim), scatter.ID, lookup.ID)
	// Word2vec's framework ops form a serial pipeline hanging off the
	// scatter update (the step is one short dependent chain, unlike the
	// wide CNN graphs).
	bd.lastFwd = scatter.ID
	chainKinds := []OpType{OpReshape, OpSum, OpSlice, OpMul, OpAdd}
	for i := 0; i < 25; i++ {
		t := chainKinds[i%len(chainKinds)]
		elems := float64(batch) * 2048
		op := Op{
			Name:        fmt.Sprintf("framework_%d/%s", i, t),
			Type:        t,
			OtherFlops:  elems,
			Bytes:       trafficElementwise * 2 * elems * bytesPerElem,
			UnitGranule: 1,
			Inputs:      bd.dep(),
		}
		if t == OpMul || t == OpAdd {
			op.OtherFlops = 0
			op.Muls = elems
		}
		added := bd.g.AddOp(op)
		bd.lastFwd = added.ID
	}
	finishGraph(bd, float64(batch*8)*bytesPerElem, 0.20, 0.05)
	return bd.g
}

// addFrameworkOps sprinkles n small framework operations over the graph
// (reshapes, sums, transposes, pads...) — the "Other N ops" tail of
// Table I.
func addFrameworkOps(bd *builder, n int) {
	kinds := []OpType{OpReshape, OpSum, OpTranspose, OpPad, OpMean, OpAdd, OpMul, OpSlice}
	for i := 0; i < n; i++ {
		t := kinds[i%len(kinds)]
		elems := float64(bd.b) * 4096
		switch t {
		case OpAdd, OpMul:
			bd.g.AddOp(Op{
				Name:        fmt.Sprintf("framework_%d/%s", i, t),
				Type:        t,
				Muls:        elems,
				Bytes:       trafficElementwise * 2 * elems * bytesPerElem,
				UnitGranule: 1,
				Inputs:      bd.dep(),
			})
		default:
			bd.misc(t, elems)
		}
	}
}

// finishGraph stamps the model-level metadata.
func finishGraph(bd *builder, inputBytes, gpuUtil, unhiddenFrac float64) {
	bd.g.InputBytes = inputBytes
	bd.g.GPUUtilization = gpuUtil
	bd.g.GPUUnhiddenTransferFrac = unhiddenFrac
	bd.g.GPUEffFactor = gpuEffFactors[ModelName(bd.g.Model)]
}

// gpuEffFactors are the per-model GPU calibration constants (DESIGN.md
// §2: the GPU model is calibrated to the paper's *relative* results).
var gpuEffFactors = map[ModelName]float64{
	VGG19Name:       0.86,
	AlexNetName:     1.70,
	DCGANName:       2.00,
	ResNet50Name:    0.85,
	InceptionV3Name: 0.90,
	LSTMName:        1.0,
	Word2VecName:    1.0,
}
