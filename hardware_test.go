package heteropim

import (
	"bytes"
	"strings"
	"testing"
)

func TestHardwareConfigRoundTrip(t *testing.T) {
	h := DefaultHardware(ConfigHeteroPIM)
	var buf bytes.Buffer
	if err := h.SaveHardware(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHardware(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != h.Name() || got.FixedUnits() != h.FixedUnits() {
		t.Fatalf("round trip changed config: %s/%d vs %s/%d",
			got.Name(), got.FixedUnits(), h.Name(), h.FixedUnits())
	}
	if _, err := LoadHardware(strings.NewReader("{broken")); err == nil {
		t.Fatal("garbage hardware JSON must error")
	}
}

func TestWithFixedUnitsScalesPerformance(t *testing.T) {
	base := DefaultHardware(ConfigHeteroPIM)
	small, err := base.WithFixedUnits(111)
	if err != nil {
		t.Fatal(err)
	}
	big, err := base.WithFixedUnits(888)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunOnHardware(small, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunOnHardware(big, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	if rb.StepTime >= rs.StepTime {
		t.Fatalf("888 units (%g) should beat 111 units (%g)", rb.StepTime, rs.StepTime)
	}
	if _, err := base.WithFixedUnits(-1); err == nil {
		t.Fatal("negative budget must error")
	}
}

func TestWithStackFrequencyScale(t *testing.T) {
	base := DefaultHardware(ConfigHeteroPIM)
	fast, err := base.WithStackFrequencyScale(4)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunOnHardware(base, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunOnHardware(fast, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	if r4.StepTime >= r1.StepTime {
		t.Fatal("4x stack must be faster")
	}
	if _, err := base.WithStackFrequencyScale(0); err == nil {
		t.Fatal("zero scale must error")
	}
}

func TestRunOnHardwareUnknownModel(t *testing.T) {
	if _, err := RunOnHardware(DefaultHardware(ConfigHeteroPIM), "nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestRunCustomCNN(t *testing.T) {
	spec := CNNSpec{
		Name:  "TinyNet",
		Batch: 16, InputH: 32, InputW: 32, InputC: 3, Classes: 10,
		Layers: []LayerSpec{
			{Kind: "conv", FH: 3, FW: 3, OutC: 16, Stride: 1, SamePad: true, Activation: "relu"},
			{Kind: "pool", Window: 2, Stride: 2},
			{Kind: "conv", FH: 3, FW: 3, OutC: 32, Stride: 1, SamePad: true, Activation: "relu"},
			{Kind: "pool", Window: 2, Stride: 2},
			{Kind: "fc", Out: 10},
		},
	}
	var results []Result
	for _, cfg := range []Config{ConfigCPU, ConfigGPU, ConfigHeteroPIM} {
		r, err := RunCustomCNN(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		if r.StepTime <= 0 {
			t.Fatalf("%v: degenerate step", cfg)
		}
		results = append(results, r)
	}
	// Hetero must beat the CPU on a conv net, as for the paper models.
	if results[2].StepTime >= results[0].StepTime {
		t.Fatalf("custom CNN: Hetero (%g) did not beat CPU (%g)",
			results[2].StepTime, results[0].StepTime)
	}
	// On custom hardware with a doubled budget the run still works; a
	// millisecond-scale net is launch-overhead dominated, so extra
	// units buy little (and over-eager offload of tiny ops can even
	// cost a bit) — the flip side of the paper's "small DCGAN loses to
	// GPU" observation.
	big, err := DefaultHardware(ConfigHeteroPIM).WithFixedUnits(888)
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := RunCustomCNNOnHardware(big, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rBig.StepTime > results[2].StepTime*2 {
		t.Fatalf("888 units (%g) wildly worse than 440 (%g)",
			rBig.StepTime, results[2].StepTime)
	}
	if _, err := RunCustomCNN(ConfigCPU, CNNSpec{}); err == nil {
		t.Fatal("empty spec must error")
	}
	if _, err := RunCustomCNNOnHardware(big, CNNSpec{}); err == nil {
		t.Fatal("empty spec must error on hardware path")
	}
}
