module heteropim

go 1.22
