package heteropim

import (
	"context"
	"fmt"

	"heteropim/internal/batch"
	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// BatchCell describes one simulation of a batched sweep: a model on a
// configuration, with the optional axes the paper's studies vary.
// Exactly the cells pimsweep's four sweeps and the serving daemon emit.
type BatchCell struct {
	Config Config
	Model  Model
	// BatchSize overrides the model's paper batch size when > 0.
	BatchSize int
	// FreqScale is the PIM/stack PLL multiplier; 0 means 1.
	FreqScale float64
	// Variant, when non-nil, runs the Hetero PIM platform with the
	// RC/OP techniques individually toggled (Config is ignored).
	Variant *Variant
	// Processors, when > 0, runs Hetero PIM with that many programmable
	// processors at constant logic-die area (Config is ignored).
	Processors int
	// Stacks, when > 1, shards the minibatch across that many stacks
	// (data-parallel training; PIM configurations only — see
	// Options.Stacks). AllReduce picks the gradient schedule ("ring",
	// "tree", or "" for ring).
	Stacks    int
	AllReduce string
}

// BatchRun evaluates the cells on the shared worker pool and returns
// their results in input order — bit-identical to calling the
// corresponding Run* function per cell sequentially. Cells sharing a
// task-graph template (same model, batch size and pipeline options) are
// grouped: one leader per group runs first and warms the template and
// profile caches, then the rest fan out (internal/batch). Group and
// leader counts are reported through batch.ReadStats alongside the
// simulation-cache counters.
func BatchRun(cells []BatchCell) ([]Result, error) {
	bc := make([]batch.Cell[Result], len(cells))
	for i, c := range cells {
		c := c
		if c.Variant != nil && c.Processors > 0 {
			return nil, fmt.Errorf("heteropim: cell %d sets both Variant and Processors", i)
		}
		scale := c.FreqScale
		if scale == 0 {
			scale = 1
		}
		op := c.Config == ConfigHeteroPIM || c.Variant != nil || c.Processors > 0
		if c.Variant != nil {
			op = c.Variant.OperationPipeline
		}
		bc[i] = batch.Cell[Result]{
			Group: batch.GroupKey(string(c.Model), c.BatchSize, 4, op, 2),
			Run: func(context.Context) (Result, error) {
				return runBatchCell(c, scale)
			},
		}
	}
	return batch.Eval(context.Background(), bc)
}

// runBatchCell executes one cell exactly as the public Run* entry
// points would.
func runBatchCell(c BatchCell, scale float64) (Result, error) {
	sched, err := nn.ParseAllReduceKind(c.AllReduce)
	if err != nil {
		return Result{}, err
	}
	switch {
	case c.Variant != nil:
		g, err := nn.Build(c.Model)
		if err != nil {
			return Result{}, err
		}
		if c.Stacks > 1 {
			opts := core.HeteroOptions()
			opts.RC = c.Variant.RecursiveKernels
			opts.OP = c.Variant.OperationPipeline
			opts.Stacks, opts.AllReduce = c.Stacks, sched
			r, err := core.RunPIM(g, hw.PaperConfigScaled(hw.ConfigHeteroPIM, scale), opts)
			if err != nil {
				return Result{}, err
			}
			r.Config.Name = fmt.Sprintf("Hetero PIM(RC=%v,OP=%v) x%d",
				c.Variant.RecursiveKernels, c.Variant.OperationPipeline, c.Stacks)
			return wrap(r), nil
		}
		r, err := core.RunHeteroVariant(g, c.Variant.RecursiveKernels, c.Variant.OperationPipeline, scale)
		if err != nil {
			return Result{}, err
		}
		return wrap(r), nil
	case c.Processors > 0:
		g, err := nn.Build(c.Model)
		if err != nil {
			return Result{}, err
		}
		opts := core.HeteroOptions()
		if c.Stacks > 1 {
			opts.Stacks, opts.AllReduce = c.Stacks, sched
		}
		r, err := core.RunPIM(g, hw.HeteroConfigWithProcessors(c.Processors, scale), opts)
		if err != nil {
			return Result{}, err
		}
		return wrap(r), nil
	case c.Stacks > 1:
		return RunWithOptions(c.Config, c.Model, Options{
			FreqScale: scale,
			BatchSize: c.BatchSize,
			Stacks:    c.Stacks,
			AllReduce: c.AllReduce,
		})
	case c.BatchSize > 0:
		g, err := nn.BuildWithBatch(c.Model, c.BatchSize)
		if err != nil {
			return Result{}, err
		}
		r, err := core.Run(c.Config, g, scale)
		if err != nil {
			return Result{}, err
		}
		return wrap(r), nil
	default:
		return RunScaled(c.Config, c.Model, scale)
	}
}

// BatchStats reports the grouped-evaluation and DSE-pruning counters
// accumulated since the last ResetBatchStats (cells evaluated, template
// groups, leader warm-ups; DSE candidates, pruned, simulated).
type BatchStats = batch.Stats

// BatchRunStats reads the process's batch-evaluation counters.
func BatchRunStats() BatchStats { return batch.ReadStats() }

// ResetBatchStats zeroes the batch-evaluation counters.
func ResetBatchStats() { batch.ResetStats() }
