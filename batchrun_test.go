package heteropim

import "testing"

// TestBatchRunMatchesSequentialRuns pins the BatchRun contract: results
// are bit-identical to calling the corresponding Run* function per
// cell, in input order, across all four sweep axes pimsweep uses.
func TestBatchRunMatchesSequentialRuns(t *testing.T) {
	cells := []BatchCell{
		{Config: ConfigCPU, Model: AlexNet},
		{Config: ConfigHeteroPIM, Model: AlexNet},
		{Config: ConfigHeteroPIM, Model: VGG19, FreqScale: 2},
		{Model: AlexNet, Variant: &Variant{RecursiveKernels: true}},
		{Model: AlexNet, Variant: &Variant{RecursiveKernels: true, OperationPipeline: true}},
		{Config: ConfigGPU, Model: AlexNet, BatchSize: 64},
		{Config: ConfigHeteroPIM, Model: AlexNet, BatchSize: 64},
		{Model: DCGAN, Processors: 4},
	}
	got, err := BatchRun(cells)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Result, len(cells))
	for i, c := range cells {
		var err error
		switch {
		case c.Variant != nil:
			want[i], err = RunVariant(c.Model, *c.Variant)
		case c.Processors > 0:
			want[i], err = RunHeteroProcessors(c.Model, c.Processors)
		case c.BatchSize > 0:
			want[i], err = RunWithBatch(c.Config, c.Model, c.BatchSize)
		case c.FreqScale != 0:
			want[i], err = RunScaled(c.Config, c.Model, c.FreqScale)
		default:
			want[i], err = Run(c.Config, c.Model)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d: BatchRun diverged from the sequential run:\n got %+v\nwant %+v",
				i, got[i], want[i])
		}
	}
}

// TestBatchRunRejectsConflictingAxes covers the validation path.
func TestBatchRunRejectsConflictingAxes(t *testing.T) {
	_, err := BatchRun([]BatchCell{{Model: AlexNet, Variant: &Variant{}, Processors: 2}})
	if err == nil {
		t.Fatal("cell with both Variant and Processors accepted")
	}
}

// TestBatchRunStatsCountGroups checks the counters the CLIs surface.
func TestBatchRunStatsCountGroups(t *testing.T) {
	ResetBatchStats()
	defer ResetBatchStats()
	cells := []BatchCell{
		{Config: ConfigCPU, Model: AlexNet},
		{Config: ConfigGPU, Model: AlexNet},
		{Config: ConfigHeteroPIM, Model: AlexNet},
		{Config: ConfigHeteroPIM, Model: VGG19},
	}
	if _, err := BatchRun(cells); err != nil {
		t.Fatal(err)
	}
	st := BatchRunStats()
	if st.Cells != 4 {
		t.Errorf("counted %d cells, want 4", st.Cells)
	}
	// AlexNet splits by pipeline options (hetero vs baselines), VGG-19
	// adds a third group.
	if st.Groups != 3 || st.Leaders != 3 {
		t.Errorf("groups=%d leaders=%d, want 3/3", st.Groups, st.Leaders)
	}
}
