package heteropim

import "testing"

func TestExtensionExperimentsList(t *testing.T) {
	exps := ExtensionExperiments()
	if len(exps) != 3 || exps[0].ID != "E1" || exps[1].ID != "E2" || exps[2].ID != "E3" {
		t.Fatalf("unexpected extension list: %+v", exps)
	}
}

func TestGPUHostHetero(t *testing.T) {
	cpuHost, err := Run(ConfigHeteroPIM, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	gpuHost, err := RunGPUHostHetero(AlexNet, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gpuHost.StepTime <= 0 {
		t.Fatal("degenerate GPU-host run")
	}
	// The PIMs do the bulk either way: the host swap moves step time
	// only modestly.
	ratio := gpuHost.StepTime / cpuHost.StepTime
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("GPU-host/CPU-host = %.2f, expected a modest shift", ratio)
	}
	if gpuHost.FixedUtilization < 0.5 {
		t.Errorf("GPU-host utilization collapsed to %.0f%%", gpuHost.FixedUtilization*100)
	}
	if _, err := RunGPUHostHetero("NoSuchModel", 1); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestBatchSweep(t *testing.T) {
	small, err := RunWithBatch(ConfigHeteroPIM, AlexNet, 8)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunWithBatch(ConfigHeteroPIM, AlexNet, 128)
	if err != nil {
		t.Fatal(err)
	}
	// 16x the batch must cost substantially more wall clock but less
	// than 32x (sub-linear thanks to better unit utilization and
	// amortized overheads).
	ratio := big.StepTime / small.StepTime
	if ratio < 8 || ratio > 32 {
		t.Errorf("batch 128/8 step-time ratio = %.1f, want roughly linear", ratio)
	}
	if _, err := RunWithBatch(ConfigHeteroPIM, AlexNet, -1); err != nil {
		t.Fatal("non-positive batch should fall back to the default, got error:", err)
	}
	// Non-CNN models are batch-fixed.
	if _, err := RunWithBatch(ConfigHeteroPIM, LSTM, 64); err == nil {
		t.Fatal("LSTM batch override must error")
	}
}

func TestExtensionTables(t *testing.T) {
	for _, e := range ExtensionExperiments() {
		tab, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", e.ID)
		}
	}
}
