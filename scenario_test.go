package heteropim

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCompileScenarioMatchesSweepSpecs pins the flag-to-scenario
// equivalence the CLIs rely on: every builtin sweep compiled through
// SweepScenario + CompileScenarioSpec is identical to hand-written
// scenario documents compiled through CompileScenario — same cells,
// same order, same accounting.
func TestCompileScenarioMatchesSweepSpecs(t *testing.T) {
	data, err := os.ReadFile("testdata/scenarios/paper_grid.json")
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := CompileScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := SweepScenario("config", nil)
	if err != nil {
		t.Fatal(err)
	}
	fromSweep, err := CompileScenarioSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile.Cells, fromSweep.Cells) {
		t.Fatalf("paper grid cells differ:\n file: %+v\n sweep: %+v", fromFile.Cells, fromSweep.Cells)
	}
	if fromFile.Requested != fromSweep.Requested || fromFile.Duplicates != fromSweep.Duplicates {
		t.Fatalf("accounting differs: file %d/%d, sweep %d/%d",
			fromFile.Requested, fromFile.Duplicates, fromSweep.Requested, fromSweep.Duplicates)
	}
}

// TestSweepScenarioKinds: every builtin sweep kind compiles to a
// non-empty plan, and an unknown kind errors listing the valid ones.
func TestSweepScenarioKinds(t *testing.T) {
	for _, kind := range []string{"config", "freq", "variant", "batch", "stacks"} {
		spec, err := SweepScenario(kind, nil)
		if err != nil {
			t.Fatalf("SweepScenario(%q): %v", kind, err)
		}
		plan, err := CompileScenarioSpec(spec)
		if err != nil {
			t.Fatalf("compile %q: %v", kind, err)
		}
		if len(plan.Cells) == 0 {
			t.Errorf("sweep %q compiled to zero cells", kind)
		}
	}
	if _, err := SweepScenario("voltage", nil); err == nil {
		t.Fatal("unknown sweep kind accepted")
	}
}

// TestScenarioPlanRunsBitIdentical closes the loop on byte-parity: a
// compiled scenario executed through BatchRun equals the per-cell
// public entry points for a representative mixed-axis document.
func TestScenarioPlanRunsBitIdentical(t *testing.T) {
	doc := `{
	  "scenario": 1,
	  "cells": [
	    {"models": ["AlexNet"], "configs": ["cpu", "hetero"]},
	    {"models": ["AlexNet"], "configs": ["hetero"], "freq_scales": [2]},
	    {"models": ["AlexNet"], "configs": ["hetero"], "stacks": [2], "allreduce": ["tree"]},
	    {"models": ["AlexNet"], "variants": [{"recursive_kernels": true, "operation_pipeline": true}]}
	  ]
	}`
	plan, err := CompileScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := BatchRun(plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d results, want 5", len(got))
	}

	want := make([]Result, 5)
	if want[0], err = Run(ConfigCPU, AlexNet); err != nil {
		t.Fatal(err)
	}
	if want[1], err = Run(ConfigHeteroPIM, AlexNet); err != nil {
		t.Fatal(err)
	}
	if want[2], err = RunScaled(ConfigHeteroPIM, AlexNet, 2); err != nil {
		t.Fatal(err)
	}
	if want[3], err = RunWithOptions(ConfigHeteroPIM, AlexNet, Options{Stacks: 2, AllReduce: AllReduceTree}); err != nil {
		t.Fatal(err)
	}
	if want[4], err = RunVariant(AlexNet, Variant{RecursiveKernels: true, OperationPipeline: true}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d: scenario result differs from the direct run", i)
		}
	}
}

// TestScenarioCorpusCompiles keeps every committed scenario document
// valid: each parses, compiles, and (when open-loop) schedules.
func TestScenarioCorpusCompiles(t *testing.T) {
	files, err := filepath.Glob("testdata/scenarios/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario corpus: %v", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := CompileScenario(data)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(plan.Cells) == 0 {
			t.Fatalf("%s: zero cells", f)
		}
		if plan.Arrival != nil {
			if _, err := plan.Arrival.Schedule(plan.Seed); err != nil {
				t.Fatalf("%s: schedule: %v", f, err)
			}
		}
	}
}
