package heteropim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"heteropim/internal/metrics"
)

// TestRunInstrumentedTimelineSchema is the acceptance test for the
// `pimprof -timeline VGG-19 -config hetero` path: the instrumented
// hetero VGG-19 run must emit Chrome trace-event JSON that round-trips
// through the schema (valid JSON, X/C/M phases only, named lanes,
// non-negative timestamps) — and the Result must be bit-identical to
// the uninstrumented run.
func TestRunInstrumentedTimelineSchema(t *testing.T) {
	plain, err := Run(ConfigHeteroPIM, VGG19)
	if err != nil {
		t.Fatal(err)
	}
	res, m, err := RunInstrumented(ConfigHeteroPIM, VGG19)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, res) {
		t.Fatalf("instrumented result differs from plain:\n%+v\nvs\n%+v", plain, res)
	}

	var buf bytes.Buffer
	if err := m.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	var ct metrics.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if err := ct.Validate(); err != nil {
		t.Fatalf("timeline fails schema validation: %v", err)
	}
	var spans, counters int
	for _, ev := range ct.TraceEvents {
		switch ev.Phase {
		case "X":
			spans++
		case "C":
			counters++
		}
	}
	if spans == 0 || counters == 0 {
		t.Fatalf("timeline too thin: %d spans, %d counter events", spans, counters)
	}
}

// TestMetricsJSONAndAdvice checks the machine-readable dump and the
// advisor reading of an instrumented run.
func TestMetricsJSONAndAdvice(t *testing.T) {
	_, m, err := RunInstrumented(ConfigHeteroPIM, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Makespan float64 `json:"makespan"`
		Tracks   []struct {
			Track string `json:"track"`
		} `json:"tracks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics dump is not valid JSON: %v", err)
	}
	if snap.Makespan <= 0 || len(snap.Tracks) == 0 {
		t.Fatalf("metrics dump incomplete: %+v", snap)
	}
	advice := m.Advice()
	for _, want := range []string{"bottleneck", "underutilized"} {
		if !strings.Contains(advice, want) {
			t.Fatalf("advice missing %q:\n%s", want, advice)
		}
	}
}

// TestParseModel pins the case-insensitive model lookup and its error
// text (the CLIs and the serving daemon both lean on it).
func TestParseModel(t *testing.T) {
	for name, want := range map[string]Model{
		"VGG-19": VGG19, "vgg-19": VGG19, "alexnet": AlexNet,
		"ResNet-50": ResNet50, "WORD2VEC": Word2Vec,
	} {
		got, err := ParseModel(name)
		if err != nil || got != want {
			t.Fatalf("ParseModel(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := ParseModel("GPT-2")
	if err == nil || !strings.Contains(err.Error(), "VGG-19") {
		t.Fatalf("unknown model error must list valid names, got: %v", err)
	}
	names := ModelNames()
	if len(names) != 7 || !sort.StringsAreSorted(names) {
		t.Fatalf("ModelNames() = %v, want 7 sorted names", names)
	}
}

// TestRunObserved checks the caller-supplied-Metrics path: the Result
// matches the plain run bit-for-bit and the collector saw events.
func TestRunObserved(t *testing.T) {
	plain, err := Run(ConfigHeteroPIM, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	if m.CounterValue("sim.events") != 0 {
		t.Fatal("fresh Metrics must start empty")
	}
	res, err := RunObserved(ConfigHeteroPIM, AlexNet, 1, m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, res) {
		t.Fatalf("observed result differs from plain:\n%+v\nvs\n%+v", plain, res)
	}
	if m.CounterValue("sim.events") == 0 {
		t.Fatal("RunObserved recorded no engine events")
	}
}

// TestParseConfig pins the flag-name mapping and its error text.
func TestParseConfig(t *testing.T) {
	for name, want := range map[string]Config{
		"cpu": ConfigCPU, "GPU": ConfigGPU, "progr": ConfigProgrPIM,
		"fixed": ConfigFixedPIM, "Hetero": ConfigHeteroPIM,
	} {
		got, err := ParseConfig(name)
		if err != nil || got != want {
			t.Fatalf("ParseConfig(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := ParseConfig("tpu")
	if err == nil || !strings.Contains(err.Error(), "hetero") {
		t.Fatalf("unknown config error must list valid names, got: %v", err)
	}
	if got := ConfigNames(); len(got) != 5 {
		t.Fatalf("ConfigNames() = %v, want 5 names", got)
	}
}
