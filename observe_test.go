package heteropim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"heteropim/internal/metrics"
)

// TestRunInstrumentedTimelineSchema is the acceptance test for the
// `pimprof -timeline VGG-19 -config hetero` path: the instrumented
// hetero VGG-19 run must emit Chrome trace-event JSON that round-trips
// through the schema (valid JSON, X/C/M phases only, named lanes,
// non-negative timestamps) — and the Result must be bit-identical to
// the uninstrumented run.
func TestRunInstrumentedTimelineSchema(t *testing.T) {
	plain, err := Run(ConfigHeteroPIM, VGG19)
	if err != nil {
		t.Fatal(err)
	}
	res, m, err := RunInstrumented(ConfigHeteroPIM, VGG19)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, res) {
		t.Fatalf("instrumented result differs from plain:\n%+v\nvs\n%+v", plain, res)
	}

	var buf bytes.Buffer
	if err := m.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	var ct metrics.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if err := ct.Validate(); err != nil {
		t.Fatalf("timeline fails schema validation: %v", err)
	}
	var spans, counters int
	for _, ev := range ct.TraceEvents {
		switch ev.Phase {
		case "X":
			spans++
		case "C":
			counters++
		}
	}
	if spans == 0 || counters == 0 {
		t.Fatalf("timeline too thin: %d spans, %d counter events", spans, counters)
	}
}

// TestMetricsJSONAndAdvice checks the machine-readable dump and the
// advisor reading of an instrumented run.
func TestMetricsJSONAndAdvice(t *testing.T) {
	_, m, err := RunInstrumented(ConfigHeteroPIM, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Makespan float64 `json:"makespan"`
		Tracks   []struct {
			Track string `json:"track"`
		} `json:"tracks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics dump is not valid JSON: %v", err)
	}
	if snap.Makespan <= 0 || len(snap.Tracks) == 0 {
		t.Fatalf("metrics dump incomplete: %+v", snap)
	}
	advice := m.Advice()
	for _, want := range []string{"bottleneck", "underutilized"} {
		if !strings.Contains(advice, want) {
			t.Fatalf("advice missing %q:\n%s", want, advice)
		}
	}
}

// TestParseConfig pins the flag-name mapping and its error text.
func TestParseConfig(t *testing.T) {
	for name, want := range map[string]Config{
		"cpu": ConfigCPU, "GPU": ConfigGPU, "progr": ConfigProgrPIM,
		"fixed": ConfigFixedPIM, "Hetero": ConfigHeteroPIM,
	} {
		got, err := ParseConfig(name)
		if err != nil || got != want {
			t.Fatalf("ParseConfig(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := ParseConfig("tpu")
	if err == nil || !strings.Contains(err.Error(), "hetero") {
		t.Fatalf("unknown config error must list valid names, got: %v", err)
	}
	if got := ConfigNames(); len(got) != 5 {
		t.Fatalf("ConfigNames() = %v, want 5 names", got)
	}
}
